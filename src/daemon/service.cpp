#include "daemon/service.hpp"

#include <algorithm>

#include "common/strfmt.hpp"
#include "core/session.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::daemon {

namespace {

/// The structured rejection codes, pre-registered as labeled series so the
/// /metrics render never races a lazy registration.
constexpr const char* kRejectionCodes[] = {
    "draining",        "duplicate_session",  "invalid_session",
    "over_quota_ranks", "over_quota_sessions", "over_quota_bytes",
    "bad_request",
};

bool is_live(SessionState s) noexcept {
  return s == SessionState::kQueued || s == SessionState::kRunning;
}

}  // namespace

std::string_view to_string(SessionState s) noexcept {
  switch (s) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kFinished: return "finished";
    case SessionState::kFailed: return "failed";
    case SessionState::kKilled: return "killed";
  }
  return "?";
}

Service::Service(ServiceConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.work_dir);
  admitted_ = &metrics_.counter("bgpcd_sessions_admitted_total",
                                "Job submissions accepted");
  for (const char* code : kRejectionCodes) {
    rejected_by_[code] =
        &metrics_.counter("bgpcd_sessions_rejected_total",
                          "Job submissions rejected, by structured code",
                          {{"reason", code}});
  }
  finished_ = &metrics_.counter("bgpcd_sessions_done_total",
                                "Sessions reaching a terminal state",
                                {{"state", "finished"}});
  failed_ = &metrics_.counter("bgpcd_sessions_done_total",
                              "Sessions reaching a terminal state",
                              {{"state", "failed"}});
  killed_ = &metrics_.counter("bgpcd_sessions_done_total",
                              "Sessions reaching a terminal state",
                              {{"state", "killed"}});
  snapshots_ = &metrics_.counter("bgpcd_snapshot_publishes_total",
                                 "Periodic snapshot publications (all nodes)");
  running_ = &metrics_.gauge("bgpcd_sessions_running",
                             "Sessions currently queued or running");
  resident_ = &metrics_.gauge("bgpcd_resident_bytes",
                              "Modeled resident bytes of live sessions");
  draining_g_ =
      &metrics_.gauge("bgpcd_draining", "1 while the daemon refuses work");
}

Service::~Service() {
  begin_drain();
  wait_idle();
}

void Service::count_rejection(const std::string& code) {
  const auto it = rejected_by_.find(code);
  if (it != rejected_by_.end()) it->second->add();
}

SubmitResult Service::submit(const JobSpec& spec) {
  SubmitResult res;
  const auto reject = [&](const char* code, std::string detail) {
    res.ok = false;
    res.error_code = code;
    res.detail = std::move(detail);
    count_rejection(code);
    return res;
  };

  if (!spec.session.empty() && !valid_session_name(spec.session)) {
    return reject("invalid_session",
                  strfmt("'%s' is not a valid session name",
                         spec.session.c_str()));
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) {
    return reject("draining", "the daemon is draining and admits no work");
  }
  std::string name = spec.session;
  if (name.empty()) {
    do {
      name = strfmt("s%04u", seq_++);
    } while (std::any_of(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->name == name; }));
  } else if (std::any_of(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->name == name; })) {
    return reject("duplicate_session",
                  strfmt("session '%s' already exists", name.c_str()));
  }
  const unsigned live = live_sessions_locked();
  if (live >= config_.quotas.max_sessions) {
    return reject("over_quota_sessions",
                  strfmt("%u sessions live, quota is %u", live,
                         config_.quotas.max_sessions));
  }
  if (spec.effective_ranks() > config_.quotas.max_ranks) {
    return reject("over_quota_ranks",
                  strfmt("%u ranks requested, quota is %u per session",
                         spec.effective_ranks(), config_.quotas.max_ranks));
  }
  const u64 want = estimate_resident_bytes(spec);
  const u64 have = resident_now_locked();
  if (have + want > config_.quotas.max_resident_bytes) {
    return reject(
        "over_quota_bytes",
        strfmt("job needs ~%llu bytes, %llu of the %llu-byte budget in use",
               static_cast<unsigned long long>(want),
               static_cast<unsigned long long>(have),
               static_cast<unsigned long long>(
                   config_.quotas.max_resident_bytes)));
  }

  auto s = std::make_unique<ActiveSession>();
  s->name = name;
  s->spec = spec;
  s->spec.session = name;
  s->dir = config_.work_dir / name;
  s->snapshot_path = s->dir / "counters.bgpsnap";
  s->resident_bytes = want;
  ActiveSession& ref = *s;
  sessions_.push_back(std::move(s));
  admitted_->add();
  ref.thread = std::thread([this, &ref] { run_session(ref); });

  res.ok = true;
  res.session = name;
  res.dump_dir = ref.dir;
  res.snapshot_path = ref.snapshot_path;
  return res;
}

void Service::run_session(ActiveSession& s) {
  const JobSpec& spec = s.spec;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.kill_requested) {
      s.state = SessionState::kKilled;
      s.detail = "killed before start";
      killed_->add();
      return;
    }
    s.state = SessionState::kRunning;
  }
  try {
    std::filesystem::create_directories(s.dir);

    // The construction below mirrors bgpc_run exactly: a finished daemon
    // session's dump files are byte-identical to a same-seed batch run with
    // the same snapshot configuration.
    rt::MachineConfig mc;
    mc.num_nodes = spec.nodes;
    mc.mode = spec.mode;
    mc.num_ranks_override = spec.ranks;
    mc.sched = spec.sched;
    mc.jobs = spec.jobs;
    rt::Machine machine(mc);

    fault::FaultInjector injector{[&] {
      fault::FaultSpec fsp;
      fsp.node_deaths = spec.deaths;
      return fault::FaultPlan::random(spec.fault_seed, spec.nodes, fsp);
    }()};
    if (spec.deaths > 0) machine.set_fault_injector(&injector);
    machine.set_ft_params(spec.ftp);

    pc::Options opts;
    opts.app_name = std::string(nas::name(spec.bench));
    opts.dump_dir = s.dir;
    opts.trace.enabled = spec.trace;
    opts.trace.interval_cycles = spec.interval_cycles;
    opts.trace.preset = spec.preset;
    opts.trace.trace_dir = s.dir;
    opts.obs.enabled = spec.obs;
    pc::Session session(machine, opts);
    session.link_with_mpi();

    PublisherConfig pub_cfg = config_.snapshot;
    if (spec.snapshot_period_cycles.has_value()) {
      pub_cfg.period_cycles = *spec.snapshot_period_cycles;
    }
    SnapshotPublisher publisher(machine, s.snapshot_path, opts.app_name,
                                s.name, pub_cfg);
    if (session.flight_recorder() != nullptr) {
      publisher.set_metrics_source(&session.flight_recorder()->metrics());
    }

    {
      std::lock_guard<std::mutex> lk(s.mu);
      s.machine = &machine;
      // A kill that arrived between thread start and here must not be lost.
      if (s.kill_requested) machine.request_stop();
    }
    // Null the machine handle before the Machine object dies — on every
    // exit path, including unwinding — so kill() never chases a dangling
    // pointer. Declared after `machine`, so it runs first.
    struct MachineHandleGuard {
      ActiveSession* s;
      ~MachineHandleGuard() {
        std::lock_guard<std::mutex> lk(s->mu);
        s->machine = nullptr;
      }
    } unpublish{&s};

    auto kernel = nas::make_kernel(spec.bench, spec.cls);
    const std::string region = "region." + opts.app_name;
    bool stopped = false;
    try {
      if (spec.ftp.enabled) {
        machine.run([&](rt::RankCtx& ctx) {
          ft::run_guarded(ctx, [&](rt::RankCtx& c) {
            c.mpi_init();
            rt::ObsScope span(c, region, obs::SpanCat::kRegion);
            kernel->run(c);
          });
          ft::finalize_guarded(ctx);
        });
      } else {
        machine.run([&](rt::RankCtx& ctx) {
          ctx.mpi_init();
          {
            rt::ObsScope span(ctx, region, obs::SpanCat::kRegion);
            kernel->run(ctx);
          }
          ctx.mpi_finalize();
        });
      }
    } catch (const rt::RunStopped&) {
      // Kill/drain checkpoint: seal in-flight traces, dump every node that
      // never reached its finalize — all through the atomic write paths.
      stopped = true;
      session.seal_all_traces();
      session.checkpoint_dump();
    }
    publisher.publish_final();
    snapshots_->add(publisher.publishes());

    std::lock_guard<std::mutex> lk(s.mu);
    s.sim_cycles = machine.elapsed();
    s.dump_files = session.dump_files().size();
    s.trace_files = session.trace_files().size();
    if (stopped) {
      s.state = SessionState::kKilled;
      s.detail = strfmt("stopped mid-run; %zu checkpoint dump(s) written",
                        s.dump_files);
      killed_->add();
    } else {
      const std::vector<unsigned> dead = machine.dead_nodes();
      if (spec.ftp.enabled && !dead.empty()) {
        bool writes_ok = true;
        for (const pc::DumpWriteOutcome& o : session.write_outcomes()) {
          writes_ok = writes_ok && o.ok;
        }
        s.verified =
            writes_ok && s.dump_files == std::size_t{spec.nodes} - dead.size();
        s.detail = strfmt("degraded FT run: %zu node death(s), %zu survivor "
                          "dump(s)",
                          dead.size(), s.dump_files);
      } else {
        s.verified = kernel->result().verified;
        s.detail = kernel->result().detail;
      }
      s.state = SessionState::kFinished;
      finished_->add();
    }
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.machine = nullptr;
    s.state = SessionState::kFailed;
    s.detail = e.what();
    failed_->add();
  }
}

SessionStatus Service::snapshot_status(const ActiveSession& s) const {
  SessionStatus st;
  st.name = s.name;
  st.spec = s.spec;
  st.resident_bytes = s.resident_bytes;
  st.dump_dir = s.dir;
  st.snapshot_path = s.snapshot_path;
  std::lock_guard<std::mutex> lk(s.mu);
  st.state = s.state;
  st.detail = s.detail;
  st.verified = s.verified;
  st.dump_files = s.dump_files;
  st.trace_files = s.trace_files;
  st.sim_cycles = s.sim_cycles;
  return st;
}

std::vector<SessionStatus> Service::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SessionStatus> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(snapshot_status(*s));
  return out;
}

bool Service::status(const std::string& name, SessionStatus* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_) {
    if (s->name == name) {
      *out = snapshot_status(*s);
      return true;
    }
  }
  return false;
}

bool Service::kill(const std::string& name, std::string* err) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_) {
    if (s->name != name) continue;
    std::lock_guard<std::mutex> slk(s->mu);
    if (!is_live(s->state)) {
      if (err != nullptr) {
        *err = strfmt("session '%s' is already %s", name.c_str(),
                      std::string(to_string(s->state)).c_str());
      }
      return false;
    }
    s->kill_requested = true;
    if (s->machine != nullptr) s->machine->request_stop();
    return true;
  }
  if (err != nullptr) *err = strfmt("no session named '%s'", name.c_str());
  return false;
}

void Service::begin_drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

void Service::wait_idle() {
  // join_mu_ serializes concurrent waiters (joining one std::thread twice
  // is UB); mu_ is released during the joins so list()/status() stay
  // responsive while sessions wind down. sessions_ entries are append-only
  // and their addresses stable.
  std::lock_guard<std::mutex> jlk(join_mu_);
  std::vector<ActiveSession*> live;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& s : sessions_) live.push_back(s.get());
  }
  for (ActiveSession* s : live) {
    if (s->thread.joinable()) s->thread.join();
  }
}

u64 Service::resident_now_locked() const {
  u64 total = 0;
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (is_live(s->state)) total += s->resident_bytes;
  }
  return total;
}

unsigned Service::live_sessions_locked() const {
  unsigned n = 0;
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (is_live(s->state)) ++n;
  }
  return n;
}

void Service::update_metrics() {
  std::lock_guard<std::mutex> lk(mu_);
  running_->set(static_cast<double>(live_sessions_locked()));
  resident_->set(static_cast<double>(resident_now_locked()));
  draining_g_->set(draining_ ? 1.0 : 0.0);
}

json::Value to_json(const SessionStatus& st) {
  json::Value v = json::Value::object();
  v.set("session", json::Value(st.name));
  v.set("state", json::Value(std::string(to_string(st.state))));
  v.set("spec", st.spec.to_json());
  if (!st.detail.empty()) v.set("detail", json::Value(st.detail));
  v.set("verified", json::Value(st.verified));
  v.set("dump_files", json::Value(u64{st.dump_files}));
  v.set("trace_files", json::Value(u64{st.trace_files}));
  v.set("resident_bytes", json::Value(st.resident_bytes));
  v.set("sim_cycles", json::Value(st.sim_cycles));
  v.set("dump_dir", json::Value(st.dump_dir.string()));
  v.set("snapshot", json::Value(st.snapshot_path.string()));
  return v;
}

json::Value Service::sessions_json() const {
  json::Value arr = json::Value::array();
  for (const SessionStatus& st : list()) arr.push(to_json(st));
  return arr;
}

}  // namespace bgp::daemon
