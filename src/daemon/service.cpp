#include "daemon/service.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>

#include "common/binio.hpp"
#include "common/strfmt.hpp"
#include "core/node_monitor.hpp"
#include "core/session.hpp"
#include "daemon/attach.hpp"
#include "fault/fault.hpp"
#include "ft/ftcomm.hpp"
#include "nas/kernel.hpp"
#include "runtime/machine.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::daemon {

namespace {

/// The structured rejection codes, pre-registered as labeled series so the
/// /metrics render never races a lazy registration.
constexpr const char* kRejectionCodes[] = {
    "draining",        "duplicate_session",  "invalid_session",
    "over_quota_ranks", "over_quota_sessions", "over_quota_bytes",
    "bad_request",     "journal_unwritable",
};

bool is_live(SessionState s) noexcept {
  return s == SessionState::kQueued || s == SessionState::kRunning;
}

SessionState state_from_string(std::string_view s) {
  if (s == "queued") return SessionState::kQueued;
  if (s == "running") return SessionState::kRunning;
  if (s == "finished") return SessionState::kFinished;
  if (s == "failed") return SessionState::kFailed;
  if (s == "killed") return SessionState::kKilled;
  if (s == "aborted") return SessionState::kAborted;
  throw json::JsonError(strfmt("unknown session state '%s'",
                               std::string(s).c_str()));
}

/// Parse an auto-assigned name ("s0000"...) back to its counter value.
bool parse_auto_name(const std::string& name, unsigned* out) {
  if (name.size() < 2 || name[0] != 's') return false;
  unsigned v = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
    v = v * 10 + static_cast<unsigned>(name[i] - '0');
    if (v > 10'000'000) return false;
  }
  *out = v;
  return true;
}

}  // namespace

std::string_view to_string(SessionState s) noexcept {
  switch (s) {
    case SessionState::kQueued: return "queued";
    case SessionState::kRunning: return "running";
    case SessionState::kFinished: return "finished";
    case SessionState::kFailed: return "failed";
    case SessionState::kKilled: return "killed";
    case SessionState::kAborted: return "aborted";
  }
  return "?";
}

Service::Service(ServiceConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.work_dir);
  if (config_.journal_path.empty()) {
    config_.journal_path = config_.work_dir / "bgpcd.journal";
  }
  admitted_ = &metrics_.counter("bgpcd_sessions_admitted_total",
                                "Job submissions accepted");
  for (const char* code : kRejectionCodes) {
    rejected_by_[code] =
        &metrics_.counter("bgpcd_sessions_rejected_total",
                          "Job submissions rejected, by structured code",
                          {{"reason", code}});
  }
  finished_ = &metrics_.counter("bgpcd_sessions_done_total",
                                "Sessions reaching a terminal state",
                                {{"state", "finished"}});
  failed_ = &metrics_.counter("bgpcd_sessions_done_total",
                              "Sessions reaching a terminal state",
                              {{"state", "failed"}});
  killed_ = &metrics_.counter("bgpcd_sessions_done_total",
                              "Sessions reaching a terminal state",
                              {{"state", "killed"}});
  snapshots_ = &metrics_.counter("bgpcd_snapshot_publishes_total",
                                 "Periodic snapshot publications (all nodes)");
  journal_records_ = &metrics_.counter("bgpcd_journal_records_total",
                                       "Session journal records appended");
  journal_errors_ =
      &metrics_.counter("bgpcd_journal_append_errors_total",
                        "Session journal appends that failed to persist");
  recovered_sessions_ =
      &metrics_.counter("bgpcd_sessions_recovered_total",
                        "Sessions re-listed from the journal at startup");
  salvaged_dumps_ =
      &metrics_.counter("bgpcd_salvaged_dumps_total",
                        "Node dumps salvaged from orphaned sessions");
  running_ = &metrics_.gauge("bgpcd_sessions_running",
                             "Sessions currently queued or running");
  resident_ = &metrics_.gauge("bgpcd_resident_bytes",
                              "Modeled resident bytes of live sessions");
  draining_g_ =
      &metrics_.gauge("bgpcd_draining", "1 while the daemon refuses work");
  read_only_g_ = &metrics_.gauge(
      "bgpcd_read_only", "1 while the journal is unwritable (degraded)");

  // Host observability (latency histograms, events.jsonl, flight ring)
  // comes up before the journal so recovery itself is already traced —
  // and so a predecessor's crash ring is salvaged before anything new
  // lands in the work directory.
  host_obs_ =
      std::make_unique<HostObs>(metrics_, config_.work_dir, config_.host);
  host_obs_->emit(obs::EventLevel::kInfo,
                  obs::HostEvent("daemon_start")
                      .str("work_dir", config_.work_dir.string())
                      .str("version", config_.host.version.empty()
                                          ? "unknown"
                                          : config_.host.version));

  if (config_.recover) {
    try {
      journal_ =
          std::make_unique<JournalWriter>(config_.journal_path, config_.faults);
      journal_->set_host_timers(host_obs_->journal_write,
                                host_obs_->journal_fsync);
    } catch (const JournalError& e) {
      // A journal we cannot open or must not touch (foreign magic): serve
      // status and let reads work, but admit nothing — the alternative is
      // running sessions the next restart cannot account for.
      enter_read_only(e.what());
      recovery_.log.push_back(
          strfmt("journal unusable, daemon is read-only: %s", e.what()));
    }
    if (journal_ != nullptr) recover_from_journal();
    write_recovery_log();
    if (recovery_.journal_found) {
      host_obs_->emit(obs::EventLevel::kInfo,
                      obs::HostEvent("recovery_done")
                          .num("records", u64{recovery_.records_replayed})
                          .num("relisted", u64{recovery_.relisted})
                          .num("orphans", u64{recovery_.orphans_aborted})
                          .num("salvaged", u64{recovery_.dumps_salvaged}));
    }
  }
}

Service::~Service() {
  begin_drain();
  wait_idle();
}

void Service::count_rejection(const std::string& code) {
  const auto it = rejected_by_.find(code);
  if (it != rejected_by_.end()) it->second->add();
}

void Service::enter_read_only(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lk(ro_mu_);
    if (read_only_) return;
    read_only_ = true;
    read_only_reason_ = reason;
  }
  if (host_obs_ != nullptr) {
    host_obs_->emit(obs::EventLevel::kError,
                    obs::HostEvent("read_only").str("reason", reason));
  }
}

bool Service::read_only() const {
  std::lock_guard<std::mutex> lk(ro_mu_);
  return read_only_;
}

std::string Service::health_text() const {
  if (draining()) return "draining";
  if (read_only()) return "degraded";
  return "ok";
}

void Service::journal_append(const char* op, const std::string& session,
                             json::Value body) {
  {
    std::lock_guard<std::mutex> lk(ro_mu_);
    if (read_only_ || journal_ == nullptr) return;  // already degraded
  }
  JournalRecord rec;
  rec.op = op;
  rec.session = session;
  rec.body = std::move(body);
  try {
    journal_->append(rec);
    journal_records_->add();
  } catch (const std::exception& e) {
    // Graceful degradation: running sessions keep going (their artifacts
    // are already accounted for by the admit/start records), but nothing
    // new is admitted until an operator fixes the disk and restarts.
    journal_errors_->add();
    enter_read_only(e.what());
  }
}

unsigned Service::salvage_session(ActiveSession& s) {
  std::error_code ec;
  if (!std::filesystem::exists(s.snapshot_path, ec)) {
    recovery_.log.push_back(
        strfmt("%s: no snapshot file to salvage", s.name.c_str()));
    return 0;
  }
  try {
    // One-shot attach: the writer is dead, so seqlock-busy nodes (a crash
    // mid-publish) can never stabilize — mine what is readable and report
    // the rest instead of retrying.
    const AttachView view = attach_file(s.snapshot_path);
    for (const unsigned node : view.busy) {
      recovery_.log.push_back(strfmt(
          "%s: node %u snapshot lost (writer died mid-publish, seqlock "
          "held)",
          s.name.c_str(), node));
    }
    for (const unsigned node : view.corrupt) {
      recovery_.log.push_back(strfmt("%s: node %u snapshot slot corrupt",
                                     s.name.c_str(), node));
    }
    const std::vector<pc::NodeDump> dumps = to_node_dumps(view);
    if (dumps.empty()) {
      recovery_.log.push_back(
          strfmt("%s: snapshot had no readable nodes", s.name.c_str()));
      return 0;
    }
    const std::filesystem::path dir = s.dir / "salvage";
    std::filesystem::create_directories(dir);
    unsigned written = 0;
    for (const pc::NodeDump& dump : dumps) {
      const std::vector<std::byte> bytes = pc::NodeMonitor::serialize(dump);
      const std::filesystem::path path =
          dir / strfmt("%s.node%04u.bgpc", dump.app_name.c_str(),
                       dump.node_id);
      // Same atomic temp+rename publication as the live dump path.
      std::filesystem::path tmp = path;
      tmp += ".tmp";
      BinaryWriter w;
      w.put_bytes(bytes);
      w.write_file(tmp);
      std::filesystem::rename(tmp, path);
      ++written;
      salvaged_dumps_->add();
    }
    s.salvage_dir = dir;
    return written;
  } catch (const std::exception& e) {
    recovery_.log.push_back(
        strfmt("%s: salvage failed: %s", s.name.c_str(), e.what()));
    return 0;
  }
}

void Service::recover_from_journal() {
  const JournalReplay& replay = journal_->recovered();
  recovery_.journal_found =
      replay.valid_bytes > 0 || replay.dropped_bytes > 0;
  recovery_.records_replayed = replay.records.size();
  recovery_.bytes_dropped = replay.dropped_bytes;
  recovery_.tail_error = replay.tail_error;
  if (replay.dropped_bytes > 0) {
    recovery_.log.push_back(
        strfmt("dropped %zu torn journal tail byte(s): %s",
               replay.dropped_bytes, replay.tail_error.c_str()));
  }

  // Fold the record stream into per-session end states, preserving admit
  // order. Records for sessions never admitted (a torn admit whose later
  // records survived cannot happen — admit is written first — but a
  // hand-edited journal might) are skipped.
  struct Folded {
    JobSpec spec;
    SessionState state = SessionState::kQueued;
    bool terminal = false;
    std::string detail;
    bool verified = false;
    std::size_t dump_files = 0;
    std::size_t trace_files = 0;
    cycles_t sim_cycles = 0;
    std::string salvage_dir;
  };
  std::vector<std::string> order;
  std::map<std::string, Folded> by_name;
  const auto get_u64 = [](const json::Value& body, const char* key) -> u64 {
    const json::Value* v = body.get(key);
    return v != nullptr ? v->as_u64() : 0;
  };
  const auto get_str = [](const json::Value& body,
                          const char* key) -> std::string {
    const json::Value* v = body.get(key);
    return v != nullptr ? v->as_string() : std::string();
  };
  for (const JournalRecord& rec : replay.records) {
    try {
      auto it = by_name.find(rec.session);
      if (it == by_name.end()) {
        if (rec.op != journal_op::kAdmit) {
          recovery_.log.push_back(strfmt(
              "skipping %s record for unknown session '%s'", rec.op.c_str(),
              rec.session.c_str()));
          continue;
        }
        const json::Value* spec = rec.body.get("spec");
        if (spec == nullptr) {
          recovery_.log.push_back(strfmt(
              "admit record for '%s' carries no spec; skipping",
              rec.session.c_str()));
          continue;
        }
        Folded f;
        f.spec = JobSpec::from_json(*spec);
        order.push_back(rec.session);
        by_name.emplace(rec.session, std::move(f));
        continue;
      }
      Folded& f = it->second;
      if (rec.op == journal_op::kStart) {
        f.state = SessionState::kRunning;
      } else if (rec.op == journal_op::kCheckpoint) {
        f.sim_cycles = get_u64(rec.body, "sim_cycles");
        f.dump_files = get_u64(rec.body, "dump_files");
      } else if (rec.op == journal_op::kKill) {
        // The kill was requested; whether it landed shows up as a finish
        // record. Nothing to fold.
      } else if (rec.op == journal_op::kFinish) {
        f.terminal = true;
        f.state = state_from_string(get_str(rec.body, "state"));
        f.detail = get_str(rec.body, "detail");
        const json::Value* verified = rec.body.get("verified");
        f.verified = verified != nullptr && verified->as_bool();
        f.dump_files = get_u64(rec.body, "dump_files");
        f.trace_files = get_u64(rec.body, "trace_files");
        f.sim_cycles = get_u64(rec.body, "sim_cycles");
      } else if (rec.op == journal_op::kAbort) {
        f.terminal = true;
        f.state = SessionState::kAborted;
        f.detail = get_str(rec.body, "detail");
        f.dump_files = get_u64(rec.body, "salvaged");
        f.salvage_dir = get_str(rec.body, "salvage_dir");
      }
    } catch (const std::exception& e) {
      recovery_.log.push_back(strfmt("bad journal record for '%s': %s",
                                     rec.session.c_str(), e.what()));
    }
  }

  for (const std::string& name : order) {
    Folded& f = by_name.at(name);
    auto s = std::make_unique<ActiveSession>();
    s->name = name;
    s->spec = f.spec;
    s->spec.session = name;
    s->dir = config_.work_dir / name;
    s->snapshot_path = s->dir / "counters.bgpsnap";
    s->resident_bytes = estimate_resident_bytes(f.spec);
    s->recovered = true;
    unsigned counter = 0;
    if (parse_auto_name(name, &counter)) seq_ = std::max(seq_, counter + 1);

    if (f.terminal) {
      // A session that reached its terminal state in a previous life:
      // re-list it exactly as it ended.
      s->state = f.state;
      s->detail = f.detail;
      s->verified = f.verified;
      s->dump_files = f.dump_files;
      s->trace_files = f.trace_files;
      s->sim_cycles = f.sim_cycles;
      if (!f.salvage_dir.empty()) s->salvage_dir = f.salvage_dir;
      ++recovery_.relisted;
      recovered_sessions_->add();
      recovery_.log.push_back(strfmt("re-listed %s session '%s'",
                                     std::string(to_string(f.state)).c_str(),
                                     name.c_str()));
    } else {
      // Orphan: admitted (maybe started) but the daemon died before any
      // terminal record landed. Abort it and salvage the last checkpoint.
      const char* was =
          f.state == SessionState::kRunning ? "running" : "queued";
      const unsigned salvaged = salvage_session(*s);
      s->state = SessionState::kAborted;
      s->dump_files = salvaged;
      s->sim_cycles = std::max(s->sim_cycles, f.sim_cycles);
      s->detail = strfmt(
          "orphaned by daemon restart (was %s); %u node dump(s) salvaged "
          "from the last snapshot",
          was, salvaged);
      ++recovery_.orphans_aborted;
      recovery_.dumps_salvaged += salvaged;
      recovered_sessions_->add();
      recovery_.log.push_back(
          strfmt("aborted orphaned session '%s' (%s)", name.c_str(),
                 s->detail.c_str()));
      // Record the abort so the *next* restart re-lists it as terminal
      // instead of salvaging again (idempotent recovery).
      json::Value body = json::Value::object();
      body.set("detail", json::Value(s->detail));
      body.set("salvaged", json::Value(u64{salvaged}));
      body.set("salvage_dir", json::Value(s->salvage_dir.string()));
      journal_append(journal_op::kAbort, name, std::move(body));
    }
    sessions_.push_back(std::move(s));
  }
}

void Service::write_recovery_log() const {
  std::string text;
  text += strfmt("journal: %s\n", config_.journal_path.string().c_str());
  text += strfmt("records replayed: %zu\n", recovery_.records_replayed);
  if (recovery_.bytes_dropped > 0) {
    text += strfmt("torn tail: dropped %zu byte(s) (%s)\n",
                   recovery_.bytes_dropped, recovery_.tail_error.c_str());
  }
  text += strfmt("sessions re-listed: %u\norphans aborted: %u\n"
                 "dumps salvaged: %u\n",
                 recovery_.relisted, recovery_.orphans_aborted,
                 recovery_.dumps_salvaged);
  for (const std::string& line : recovery_.log) text += line + "\n";
  std::ofstream out(config_.work_dir / "recovery.log",
                    std::ios::binary | std::ios::trunc);
  out << text;
}

SubmitResult Service::submit(const JobSpec& spec, const std::string& req_id) {
  SubmitResult res;
  const auto reject = [&](const char* code, std::string detail) {
    res.ok = false;
    res.error_code = code;
    res.detail = std::move(detail);
    count_rejection(code);
    host_obs_->emit(obs::EventLevel::kWarn,
                    obs::HostEvent("session_reject")
                        .str("req", req_id)
                        .str("session", spec.session)
                        .str("code", code)
                        .str("detail", res.detail));
    return res;
  };

  if (!spec.session.empty() && !valid_session_name(spec.session)) {
    return reject("invalid_session",
                  strfmt("'%s' is not a valid session name",
                         spec.session.c_str()));
  }

  std::lock_guard<std::mutex> lk(mu_);
  if (draining_) {
    return reject("draining", "the daemon is draining and admits no work");
  }
  {
    std::lock_guard<std::mutex> ro(ro_mu_);
    if (read_only_) {
      return reject(
          "journal_unwritable",
          strfmt("the session journal is unwritable (%s); the daemon is "
                 "read-only until the disk is fixed and it restarts",
                 read_only_reason_.c_str()));
    }
  }
  std::string name = spec.session;
  if (name.empty()) {
    do {
      name = strfmt("s%04u", seq_++);
    } while (std::any_of(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->name == name; }));
  } else if (std::any_of(sessions_.begin(), sessions_.end(),
                         [&](const auto& s) { return s->name == name; })) {
    return reject("duplicate_session",
                  strfmt("session '%s' already exists", name.c_str()));
  }
  const unsigned live = live_sessions_locked();
  if (live >= config_.quotas.max_sessions) {
    return reject("over_quota_sessions",
                  strfmt("%u sessions live, quota is %u", live,
                         config_.quotas.max_sessions));
  }
  if (spec.effective_ranks() > config_.quotas.max_ranks) {
    return reject("over_quota_ranks",
                  strfmt("%u ranks requested, quota is %u per session",
                         spec.effective_ranks(), config_.quotas.max_ranks));
  }
  const u64 want = estimate_resident_bytes(spec);
  const u64 have = resident_now_locked();
  if (have + want > config_.quotas.max_resident_bytes) {
    return reject(
        "over_quota_bytes",
        strfmt("job needs ~%llu bytes, %llu of the %llu-byte budget in use",
               static_cast<unsigned long long>(want),
               static_cast<unsigned long long>(have),
               static_cast<unsigned long long>(
                   config_.quotas.max_resident_bytes)));
  }

  auto s = std::make_unique<ActiveSession>();
  s->name = name;
  s->spec = spec;
  s->spec.session = name;
  s->dir = config_.work_dir / name;
  s->snapshot_path = s->dir / "counters.bgpsnap";
  s->resident_bytes = want;
  s->admit_host_ns = obs::host_now_ns();

  // Write-ahead: the admit record must be durable before the session
  // exists. A daemon killed immediately after this point re-lists the
  // session as an orphan at the next start instead of forgetting it; a
  // failed append refuses the admission (retryable) and degrades.
  json::Value admit_body = json::Value::object();
  admit_body.set("spec", s->spec.to_json());
  if (!req_id.empty()) admit_body.set("req", json::Value(req_id));
  journal_append(journal_op::kAdmit, name, std::move(admit_body));
  {
    std::lock_guard<std::mutex> ro(ro_mu_);
    if (read_only_) {
      return reject(
          "journal_unwritable",
          strfmt("could not journal the admission (%s); the daemon is now "
                 "read-only",
                 read_only_reason_.c_str()));
    }
  }

  ActiveSession& ref = *s;
  sessions_.push_back(std::move(s));
  admitted_->add();
  host_obs_->emit(obs::EventLevel::kInfo,
                  obs::HostEvent("session_admit")
                      .str("req", req_id)
                      .str("session", name)
                      .str("bench", std::string(nas::name(ref.spec.bench)))
                      .num("nodes", u64{ref.spec.nodes})
                      .num("resident_bytes", ref.resident_bytes));
  ref.thread = std::thread([this, &ref] { run_session(ref); });

  res.ok = true;
  res.session = name;
  res.dump_dir = ref.dir;
  res.snapshot_path = ref.snapshot_path;
  return res;
}

void Service::run_session(ActiveSession& s) {
  const JobSpec& spec = s.spec;
  // Host queue wait: admission (in submit, under mu_) to here, where the
  // session thread actually starts doing work.
  const double waited = static_cast<double>(obs::host_now_ns() -
                                            s.admit_host_ns) /
                        obs::kNsPerSecond;
  host_obs_->queue_wait->observe(waited);
  // Builds the terminal-transition journal body from the session's fields;
  // call with s.mu held.
  const auto finish_body = [&s]() {
    json::Value body = json::Value::object();
    body.set("state", json::Value(std::string(to_string(s.state))));
    body.set("detail", json::Value(s.detail));
    body.set("verified", json::Value(s.verified));
    body.set("dump_files", json::Value(u64{s.dump_files}));
    body.set("trace_files", json::Value(u64{s.trace_files}));
    body.set("sim_cycles", json::Value(s.sim_cycles));
    return body;
  };
  // One structured line per lifecycle transition; call with s.mu held.
  const auto emit_finish = [this, &s]() {
    host_obs_->emit(obs::EventLevel::kInfo,
                    obs::HostEvent("session_finish")
                        .str("session", s.name)
                        .str("state", std::string(to_string(s.state)))
                        .str("detail", s.detail)
                        .num("dump_files", u64{s.dump_files})
                        .num("sim_cycles", s.sim_cycles));
  };
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.kill_requested) {
      s.state = SessionState::kKilled;
      s.detail = "killed before start";
      killed_->add();
      journal_append(journal_op::kFinish, s.name, finish_body());
      emit_finish();
      return;
    }
    s.state = SessionState::kRunning;
  }
  journal_append(journal_op::kStart, s.name, json::Value::object());
  host_obs_->emit(obs::EventLevel::kInfo,
                  obs::HostEvent("session_start")
                      .str("session", s.name)
                      .num("queue_wait_s", waited));
  try {
    std::filesystem::create_directories(s.dir);

    // The construction below mirrors bgpc_run exactly: a finished daemon
    // session's dump files are byte-identical to a same-seed batch run with
    // the same snapshot configuration.
    rt::MachineConfig mc;
    mc.num_nodes = spec.nodes;
    mc.mode = spec.mode;
    mc.num_ranks_override = spec.ranks;
    mc.sched = spec.sched;
    mc.jobs = spec.jobs;
    rt::Machine machine(mc);

    fault::FaultInjector injector{[&] {
      fault::FaultSpec fsp;
      fsp.node_deaths = spec.deaths;
      return fault::FaultPlan::random(spec.fault_seed, spec.nodes, fsp);
    }()};
    if (spec.deaths > 0) machine.set_fault_injector(&injector);
    machine.set_ft_params(spec.ftp);

    pc::Options opts;
    opts.app_name = std::string(nas::name(spec.bench));
    opts.dump_dir = s.dir;
    opts.trace.enabled = spec.trace;
    opts.trace.interval_cycles = spec.interval_cycles;
    opts.trace.preset = spec.preset;
    opts.trace.trace_dir = s.dir;
    opts.obs.enabled = spec.obs;
    pc::Session session(machine, opts);
    session.link_with_mpi();

    PublisherConfig pub_cfg = config_.snapshot;
    if (spec.snapshot_period_cycles.has_value()) {
      pub_cfg.period_cycles = *spec.snapshot_period_cycles;
    }
    pub_cfg.faults = config_.faults;
    pub_cfg.host_publish_seconds = host_obs_->snapshot_publish;
    SnapshotPublisher publisher(machine, s.snapshot_path, opts.app_name,
                                s.name, pub_cfg);
    if (session.flight_recorder() != nullptr) {
      publisher.set_metrics_source(&session.flight_recorder()->metrics());
    }

    {
      std::lock_guard<std::mutex> lk(s.mu);
      s.machine = &machine;
      // A kill that arrived between thread start and here must not be lost.
      if (s.kill_requested) machine.request_stop();
    }
    // Null the machine handle before the Machine object dies — on every
    // exit path, including unwinding — so kill() never chases a dangling
    // pointer. Declared after `machine`, so it runs first.
    struct MachineHandleGuard {
      ActiveSession* s;
      ~MachineHandleGuard() {
        std::lock_guard<std::mutex> lk(s->mu);
        s->machine = nullptr;
      }
    } unpublish{&s};

    auto kernel = nas::make_kernel(spec.bench, spec.cls);
    const std::string region = "region." + opts.app_name;
    bool stopped = false;
    try {
      if (spec.ftp.enabled) {
        machine.run([&](rt::RankCtx& ctx) {
          ft::run_guarded(ctx, [&](rt::RankCtx& c) {
            c.mpi_init();
            rt::ObsScope span(c, region, obs::SpanCat::kRegion);
            kernel->run(c);
          });
          ft::finalize_guarded(ctx);
        });
      } else {
        machine.run([&](rt::RankCtx& ctx) {
          ctx.mpi_init();
          {
            rt::ObsScope span(ctx, region, obs::SpanCat::kRegion);
            kernel->run(ctx);
          }
          ctx.mpi_finalize();
        });
      }
    } catch (const rt::RunStopped&) {
      // Kill/drain checkpoint: seal in-flight traces, dump every node that
      // never reached its finalize — all through the atomic write paths.
      stopped = true;
      session.seal_all_traces();
      session.checkpoint_dump();
      json::Value ckpt = json::Value::object();
      ckpt.set("sim_cycles", json::Value(machine.elapsed()));
      ckpt.set("dump_files", json::Value(u64{session.dump_files().size()}));
      journal_append(journal_op::kCheckpoint, s.name, std::move(ckpt));
    }
    publisher.publish_final();
    snapshots_->add(publisher.publishes());

    std::lock_guard<std::mutex> lk(s.mu);
    s.sim_cycles = machine.elapsed();
    s.dump_files = session.dump_files().size();
    s.trace_files = session.trace_files().size();
    if (stopped) {
      s.state = SessionState::kKilled;
      s.detail = strfmt("stopped mid-run; %zu checkpoint dump(s) written",
                        s.dump_files);
      killed_->add();
    } else {
      const std::vector<unsigned> dead = machine.dead_nodes();
      if (spec.ftp.enabled && !dead.empty()) {
        bool writes_ok = true;
        for (const pc::DumpWriteOutcome& o : session.write_outcomes()) {
          writes_ok = writes_ok && o.ok;
        }
        s.verified =
            writes_ok && s.dump_files == std::size_t{spec.nodes} - dead.size();
        s.detail = strfmt("degraded FT run: %zu node death(s), %zu survivor "
                          "dump(s)",
                          dead.size(), s.dump_files);
      } else {
        s.verified = kernel->result().verified;
        s.detail = kernel->result().detail;
      }
      s.state = SessionState::kFinished;
      finished_->add();
    }
    journal_append(journal_op::kFinish, s.name, finish_body());
    emit_finish();
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lk(s.mu);
    s.machine = nullptr;
    s.state = SessionState::kFailed;
    s.detail = e.what();
    failed_->add();
    journal_append(journal_op::kFinish, s.name, finish_body());
    host_obs_->emit(obs::EventLevel::kError,
                    obs::HostEvent("session_finish")
                        .str("session", s.name)
                        .str("state", "failed")
                        .str("detail", s.detail));
  }
}

SessionStatus Service::snapshot_status(const ActiveSession& s) const {
  SessionStatus st;
  st.name = s.name;
  st.spec = s.spec;
  st.resident_bytes = s.resident_bytes;
  st.dump_dir = s.dir;
  st.snapshot_path = s.snapshot_path;
  std::lock_guard<std::mutex> lk(s.mu);
  st.state = s.state;
  st.detail = s.detail;
  st.verified = s.verified;
  st.dump_files = s.dump_files;
  st.trace_files = s.trace_files;
  st.sim_cycles = s.sim_cycles;
  st.salvage_dir = s.salvage_dir;
  st.recovered = s.recovered;
  return st;
}

std::vector<SessionStatus> Service::list() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SessionStatus> out;
  out.reserve(sessions_.size());
  for (const auto& s : sessions_) out.push_back(snapshot_status(*s));
  return out;
}

bool Service::status(const std::string& name, SessionStatus* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_) {
    if (s->name == name) {
      *out = snapshot_status(*s);
      return true;
    }
  }
  return false;
}

bool Service::kill(const std::string& name, std::string* err,
                   const std::string& req_id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_) {
    if (s->name != name) continue;
    std::lock_guard<std::mutex> slk(s->mu);
    if (!is_live(s->state)) {
      if (err != nullptr) {
        *err = strfmt("session '%s' is already %s", name.c_str(),
                      std::string(to_string(s->state)).c_str());
      }
      return false;
    }
    s->kill_requested = true;
    if (s->machine != nullptr) s->machine->request_stop();
    json::Value body = json::Value::object();
    if (!req_id.empty()) body.set("req", json::Value(req_id));
    journal_append(journal_op::kKill, name, std::move(body));
    host_obs_->emit(obs::EventLevel::kInfo, obs::HostEvent("session_kill")
                                                .str("req", req_id)
                                                .str("session", name));
    return true;
  }
  if (err != nullptr) *err = strfmt("no session named '%s'", name.c_str());
  return false;
}

void Service::begin_drain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_) return;
    draining_ = true;
  }
  host_obs_->emit(obs::EventLevel::kInfo, obs::HostEvent("drain_begin"));
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

void Service::wait_idle() {
  // join_mu_ serializes concurrent waiters (joining one std::thread twice
  // is UB); mu_ is released during the joins so list()/status() stay
  // responsive while sessions wind down. sessions_ entries are append-only
  // and their addresses stable.
  std::lock_guard<std::mutex> jlk(join_mu_);
  std::vector<ActiveSession*> live;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& s : sessions_) live.push_back(s.get());
  }
  for (ActiveSession* s : live) {
    if (s->thread.joinable()) s->thread.join();
  }
}

u64 Service::resident_now_locked() const {
  u64 total = 0;
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (is_live(s->state)) total += s->resident_bytes;
  }
  return total;
}

unsigned Service::live_sessions_locked() const {
  unsigned n = 0;
  for (const auto& s : sessions_) {
    std::lock_guard<std::mutex> slk(s->mu);
    if (is_live(s->state)) ++n;
  }
  return n;
}

void Service::update_metrics() {
  host_obs_->update_uptime();
  std::lock_guard<std::mutex> lk(mu_);
  running_->set(static_cast<double>(live_sessions_locked()));
  resident_->set(static_cast<double>(resident_now_locked()));
  draining_g_->set(draining_ ? 1.0 : 0.0);
  {
    std::lock_guard<std::mutex> ro(ro_mu_);
    read_only_g_->set(read_only_ ? 1.0 : 0.0);
  }
}

json::Value to_json(const SessionStatus& st) {
  json::Value v = json::Value::object();
  v.set("session", json::Value(st.name));
  v.set("state", json::Value(std::string(to_string(st.state))));
  v.set("spec", st.spec.to_json());
  if (!st.detail.empty()) v.set("detail", json::Value(st.detail));
  v.set("verified", json::Value(st.verified));
  v.set("dump_files", json::Value(u64{st.dump_files}));
  v.set("trace_files", json::Value(u64{st.trace_files}));
  v.set("resident_bytes", json::Value(st.resident_bytes));
  v.set("sim_cycles", json::Value(st.sim_cycles));
  v.set("dump_dir", json::Value(st.dump_dir.string()));
  v.set("snapshot", json::Value(st.snapshot_path.string()));
  if (!st.salvage_dir.empty()) {
    v.set("salvage_dir", json::Value(st.salvage_dir.string()));
  }
  if (st.recovered) v.set("recovered", json::Value(true));
  return v;
}

json::Value Service::sessions_json() const {
  json::Value arr = json::Value::array();
  for (const SessionStatus& st : list()) arr.push(to_json(st));
  return arr;
}

}  // namespace bgp::daemon
