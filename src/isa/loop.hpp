// Loop-nest descriptors: the contract between the workload kernels and the
// compiler model. A kernel describes each hot loop in *source-level scalar*
// form (per-iteration op mix plus properties such as its vectorizable
// fraction); the compiler model lowers that to machine-op bundles according
// to the active optimization options (paper §VI).
#pragma once

#include <string_view>

#include "isa/ops.hpp"

namespace bgp::isa {

/// Memory reference behaviour of a loop; used by the hot-loop transforms
/// (-qhot) and the prefetch model.
enum class LocalityClass : u8 {
  kStreaming,  ///< unit-stride sweeps over arrays (stencils, BLAS-1)
  kBlocked,    ///< tiled reuse (FFT butterflies, block solvers)
  kRandom,     ///< data-dependent access (sparse matvec, bucket sort)
};

[[nodiscard]] constexpr std::string_view to_string(LocalityClass c) noexcept {
  switch (c) {
    case LocalityClass::kStreaming: return "streaming";
    case LocalityClass::kBlocked: return "blocked";
    case LocalityClass::kRandom: return "random";
  }
  return "?";
}

/// One loop nest as the source code describes it, before optimization.
struct LoopDesc {
  std::string_view name = "loop";
  /// Total iterations executed for this invocation of the loop.
  u64 trip = 0;
  /// Per-iteration operation mix in scalar (unvectorized) form.
  OpMix body;
  /// Fraction of the FP and load/store work that is data-parallel and can be
  /// paired onto the SIMD pipes by -qarch=440d (0 = none, 1 = all).
  double vectorizable = 0.0;
  /// Loop carries a reduction (dot products, norms); SIMDizable but with a
  /// small extra combine cost and no store pairing.
  bool reduction = false;
  /// Body contains function calls that -O5 inter-procedural analysis inlines.
  bool has_calls = false;
  LocalityClass locality = LocalityClass::kStreaming;
};

}  // namespace bgp::isa
