#include "isa/ops.hpp"

namespace bgp::isa {

std::string_view to_string(FpOp op) noexcept {
  switch (op) {
    case FpOp::kAddSub: return "fp_add_sub";
    case FpOp::kMult: return "fp_mult";
    case FpOp::kDiv: return "fp_div";
    case FpOp::kFma: return "fp_fma";
    case FpOp::kSimdAddSub: return "fp_simd_add_sub";
    case FpOp::kSimdMult: return "fp_simd_mult";
    case FpOp::kSimdDiv: return "fp_simd_div";
    case FpOp::kSimdFma: return "fp_simd_fma";
  }
  return "fp_unknown";
}

std::string_view to_string(LsOp op) noexcept {
  switch (op) {
    case LsOp::kLoadSingle: return "load_single";
    case LsOp::kLoadDouble: return "load_double";
    case LsOp::kLoadQuad: return "load_quad";
    case LsOp::kStoreSingle: return "store_single";
    case LsOp::kStoreDouble: return "store_double";
    case LsOp::kStoreQuad: return "store_quad";
  }
  return "ls_unknown";
}

std::string_view to_string(IntOp op) noexcept {
  switch (op) {
    case IntOp::kAlu: return "int_alu";
    case IntOp::kMul: return "int_mul";
    case IntOp::kBranch: return "branch";
    case IntOp::kCall: return "call";
  }
  return "int_unknown";
}

u64 OpMix::total_instructions() const noexcept {
  u64 n = 0;
  for (u64 c : fp) n += c;
  for (u64 c : ls) n += c;
  for (u64 c : in) n += c;
  return n;
}

u64 OpMix::total_fp_instructions() const noexcept {
  u64 n = 0;
  for (u64 c : fp) n += c;
  return n;
}

u64 OpMix::total_flops() const noexcept {
  u64 n = 0;
  for (std::size_t i = 0; i < kNumFpOps; ++i) {
    n += fp[i] * flops_per_op(static_cast<FpOp>(i));
  }
  return n;
}

u64 OpMix::bytes_loaded() const noexcept {
  u64 n = 0;
  for (std::size_t i = 0; i < kNumLsOps; ++i) {
    const auto op = static_cast<LsOp>(i);
    if (is_load(op)) n += ls[i] * bytes_per_op(op);
  }
  return n;
}

u64 OpMix::bytes_stored() const noexcept {
  u64 n = 0;
  for (std::size_t i = 0; i < kNumLsOps; ++i) {
    const auto op = static_cast<LsOp>(i);
    if (!is_load(op)) n += ls[i] * bytes_per_op(op);
  }
  return n;
}

OpMix& OpMix::operator+=(const OpMix& other) noexcept {
  for (std::size_t i = 0; i < kNumFpOps; ++i) fp[i] += other.fp[i];
  for (std::size_t i = 0; i < kNumLsOps; ++i) ls[i] += other.ls[i];
  for (std::size_t i = 0; i < kNumIntOps; ++i) in[i] += other.in[i];
  return *this;
}

OpMix OpMix::scaled(u64 k) const noexcept {
  OpMix out = *this;
  for (auto& c : out.fp) c *= k;
  for (auto& c : out.ls) c *= k;
  for (auto& c : out.in) c *= k;
  return out;
}

}  // namespace bgp::isa
