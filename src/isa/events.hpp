// The Blue Gene/P UPC event space: 1024 possible events organized as four
// counter modes of 256 events each (paper §III-A). A UPC unit set to mode M
// maps event id E (with E/256 == M) onto physical counter E%256.
//
// Mode 0: per-core events — FPU op classes, load/store classes, integer and
//         branch classes, cycle/instruction counts, L1 and L2 cache events.
//         Each of the four cores owns a 64-event slice.
// Mode 1: chip-level memory events — shared L3, the two DDR controllers and
//         the snoop filter.
// Mode 2: network events — torus, collective and barrier networks.
// Mode 3: system/instrumentation events — Time Base reads, UPC interface
//         calls and overhead, MPI activity, rank active/idle cycles.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "isa/ops.hpp"

namespace bgp::isa {

/// Global event identifier in [0, 1024).
using EventId = u16;

inline constexpr u16 kNumEvents = 1024;
inline constexpr u16 kNumCounterModes = 4;
inline constexpr u16 kCountersPerUnit = 256;
inline constexpr unsigned kCoresPerNode = 4;

/// Counter mode that owns an event.
[[nodiscard]] constexpr u8 event_mode(EventId id) noexcept {
  return static_cast<u8>(id / kCountersPerUnit);
}
/// Physical counter index an event maps to within its mode.
[[nodiscard]] constexpr u8 event_counter(EventId id) noexcept {
  return static_cast<u8>(id % kCountersPerUnit);
}

/// Hardware unit an event originates from.
enum class Unit : u8 {
  kFpu,
  kCore,
  kL1d,
  kL1i,
  kL2,
  kL3,
  kDdr,
  kSnoop,
  kTorus,
  kCollective,
  kBarrier,
  kSystem,
  kReserved,
};

[[nodiscard]] std::string_view to_string(Unit unit) noexcept;

// ---- Per-unit event kinds -------------------------------------------------

enum class L1dEvent : u8 {
  kReadAccess = 0,
  kReadMiss,
  kWriteAccess,
  kWriteMiss,
  kLineFill,
  kEvict,
  kWriteback,
};
inline constexpr unsigned kNumL1dEvents = 7;

enum class L1iEvent : u8 { kAccess = 0, kMiss };
inline constexpr unsigned kNumL1iEvents = 2;

enum class L2Event : u8 {
  kReadAccess = 0,
  kReadHit,
  kReadMiss,
  kWriteAccess,
  kWriteMiss,
  kPrefetchIssued,
  kPrefetchHit,
  kStreamDetected,
};
inline constexpr unsigned kNumL2Events = 8;

enum class L3Event : u8 {
  kReadAccess = 0,
  kReadHit,
  kReadMiss,
  kWriteAccess,
  kWriteHit,
  kWriteMiss,
  kFillFromDdr,
  kWritebackToDdr,
  kEvict,
};
inline constexpr unsigned kNumL3Events = 9;

enum class DdrEvent : u8 {
  kReadReq = 0,
  kWriteReq,
  kBytesRead16B,     ///< read traffic in 16-byte units
  kBytesWritten16B,  ///< write traffic in 16-byte units
  kBusyCycles,
  kQueueStallCycles,
};
inline constexpr unsigned kNumDdrEvents = 6;
inline constexpr unsigned kNumDdrControllers = 2;

enum class SnoopEvent : u8 {
  kRequests = 0,
  kFilterHits,
  kInvalidatesSent,
  kInvalidatesReceived,
};
inline constexpr unsigned kNumSnoopEvents = 4;

enum class TorusEvent : u8 {
  kPacketsSentXp = 0,
  kPacketsSentXm,
  kPacketsSentYp,
  kPacketsSentYm,
  kPacketsSentZp,
  kPacketsSentZm,
  kPacketsReceived,
  kBytesSent32B,  ///< injected traffic in 32-byte torus packet chunks
  kBytesRecv32B,
  kHopsTotal,
  kSendStallCycles,
};
inline constexpr unsigned kNumTorusEvents = 11;

enum class CollectiveEvent : u8 {
  kOperations = 0,
  kBytes32B,
  kLatencyCycles,
};
inline constexpr unsigned kNumCollectiveEvents = 3;

enum class BarrierEvent : u8 { kEntries = 0, kWaitCycles };
inline constexpr unsigned kNumBarrierEvents = 2;

enum class SysEvent : u8 {
  kTimebaseReads = 0,
  kUpcStartCalls,
  kUpcStopCalls,
  kUpcOverheadCycles,
  kThresholdInterrupts,
  kMpiSends,
  kMpiRecvs,
  kMpiCollectives,
  kMpiWaitCycles,
  kRankActiveCycles,
  kRankIdleCycles,
};
inline constexpr unsigned kNumSysEvents = 11;

// ---- Event id composition --------------------------------------------------
// Mode 0 layout per core (base = core*64):
//   +0..7   FpOp counts          +8..13  LsOp counts
//   +14..17 IntOp counts         +18     CYCLE_COUNT
//   +19     INSTR_COMPLETED      +20..26 L1D       +27..28 L1I
//   +29..36 L2                   +37..63 reserved
namespace ev {

inline constexpr u16 kMode0Base = 0;
inline constexpr u16 kMode1Base = 256;
inline constexpr u16 kMode2Base = 512;
inline constexpr u16 kMode3Base = 768;
inline constexpr u16 kPerCoreSlice = 64;

[[nodiscard]] constexpr EventId fpu_op(unsigned core, FpOp op) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice +
                              static_cast<u16>(op));
}
[[nodiscard]] constexpr EventId ls_op(unsigned core, LsOp op) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 8 +
                              static_cast<u16>(op));
}
[[nodiscard]] constexpr EventId int_op(unsigned core, IntOp op) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 14 +
                              static_cast<u16>(op));
}
[[nodiscard]] constexpr EventId cycle_count(unsigned core) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 18);
}
[[nodiscard]] constexpr EventId instr_completed(unsigned core) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 19);
}
[[nodiscard]] constexpr EventId l1d(unsigned core, L1dEvent e) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 20 +
                              static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId l1i(unsigned core, L1iEvent e) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 27 +
                              static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId l2(unsigned core, L2Event e) noexcept {
  return static_cast<EventId>(kMode0Base + core * kPerCoreSlice + 29 +
                              static_cast<u16>(e));
}

// Mode 1 layout: +0..8 L3, +16.. DDR0, +32.. DDR1, +48..51 snoop filter.
[[nodiscard]] constexpr EventId l3(L3Event e) noexcept {
  return static_cast<EventId>(kMode1Base + static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId ddr(unsigned ctrl, DdrEvent e) noexcept {
  return static_cast<EventId>(kMode1Base + 16 + ctrl * 16 +
                              static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId snoop(SnoopEvent e) noexcept {
  return static_cast<EventId>(kMode1Base + 48 + static_cast<u16>(e));
}

// Mode 2 layout: +0..10 torus, +32..34 collective, +48..49 barrier.
[[nodiscard]] constexpr EventId torus(TorusEvent e) noexcept {
  return static_cast<EventId>(kMode2Base + static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId collective(CollectiveEvent e) noexcept {
  return static_cast<EventId>(kMode2Base + 32 + static_cast<u16>(e));
}
[[nodiscard]] constexpr EventId barrier(BarrierEvent e) noexcept {
  return static_cast<EventId>(kMode2Base + 48 + static_cast<u16>(e));
}

// Mode 3 layout: per-rank-slot slices of 16 events (4 slots, one per core)
// so VNM ranks on one node keep separate instrumentation counters, followed
// by chip-wide system events at +64.
[[nodiscard]] constexpr EventId system(SysEvent e, unsigned slot = 0) noexcept {
  return static_cast<EventId>(kMode3Base + slot * 16 + static_cast<u16>(e));
}

}  // namespace ev

/// One (event, count) pair in a batched event report. Lives in the ISA
/// layer (not mem/) so the compiler's precomputed block event vectors and
/// the memory system's walk accumulators share one type without a
/// dependency cycle. Deliberately trivially default-constructible: the hot
/// paths carve per-walk/per-block batches out of uninitialized stack
/// arrays, and member initializers would zero-fill hundreds of bytes per
/// simulated access.
struct EventCount {
  EventId id;
  u64 count;

  bool operator==(const EventCount&) const = default;
};

/// Descriptive metadata for one event id.
struct EventInfo {
  EventId id = 0;
  Unit unit = Unit::kReserved;
  std::string_view name = "RESERVED";
};

/// The full 1024-entry table, built once at first use.
[[nodiscard]] const std::vector<EventInfo>& event_table();

/// Metadata for one event (O(1)).
[[nodiscard]] const EventInfo& event_info(EventId id);

}  // namespace bgp::isa
