#include "isa/events.hpp"

#include <stdexcept>
#include <string>

#include "common/strfmt.hpp"

namespace bgp::isa {

std::string_view to_string(Unit unit) noexcept {
  switch (unit) {
    case Unit::kFpu: return "FPU";
    case Unit::kCore: return "CORE";
    case Unit::kL1d: return "L1D";
    case Unit::kL1i: return "L1I";
    case Unit::kL2: return "L2";
    case Unit::kL3: return "L3";
    case Unit::kDdr: return "DDR";
    case Unit::kSnoop: return "SNOOP";
    case Unit::kTorus: return "TORUS";
    case Unit::kCollective: return "COLLECTIVE";
    case Unit::kBarrier: return "BARRIER";
    case Unit::kSystem: return "SYSTEM";
    case Unit::kReserved: return "RESERVED";
  }
  return "?";
}

namespace {

const char* sys_event_name(SysEvent e) {
  switch (e) {
    case SysEvent::kTimebaseReads: return "TIMEBASE_READS";
    case SysEvent::kUpcStartCalls: return "UPC_START_CALLS";
    case SysEvent::kUpcStopCalls: return "UPC_STOP_CALLS";
    case SysEvent::kUpcOverheadCycles: return "UPC_OVERHEAD_CYCLES";
    case SysEvent::kThresholdInterrupts: return "THRESHOLD_INTERRUPTS";
    case SysEvent::kMpiSends: return "MPI_SENDS";
    case SysEvent::kMpiRecvs: return "MPI_RECVS";
    case SysEvent::kMpiCollectives: return "MPI_COLLECTIVES";
    case SysEvent::kMpiWaitCycles: return "MPI_WAIT_CYCLES";
    case SysEvent::kRankActiveCycles: return "RANK_ACTIVE_CYCLES";
    case SysEvent::kRankIdleCycles: return "RANK_IDLE_CYCLES";
  }
  return "?";
}

const char* l1d_event_name(L1dEvent e) {
  switch (e) {
    case L1dEvent::kReadAccess: return "READ_ACCESS";
    case L1dEvent::kReadMiss: return "READ_MISS";
    case L1dEvent::kWriteAccess: return "WRITE_ACCESS";
    case L1dEvent::kWriteMiss: return "WRITE_MISS";
    case L1dEvent::kLineFill: return "LINE_FILL";
    case L1dEvent::kEvict: return "EVICT";
    case L1dEvent::kWriteback: return "WRITEBACK";
  }
  return "?";
}

const char* l2_event_name(L2Event e) {
  switch (e) {
    case L2Event::kReadAccess: return "READ_ACCESS";
    case L2Event::kReadHit: return "READ_HIT";
    case L2Event::kReadMiss: return "READ_MISS";
    case L2Event::kWriteAccess: return "WRITE_ACCESS";
    case L2Event::kWriteMiss: return "WRITE_MISS";
    case L2Event::kPrefetchIssued: return "PREFETCH_ISSUED";
    case L2Event::kPrefetchHit: return "PREFETCH_HIT";
    case L2Event::kStreamDetected: return "STREAM_DETECTED";
  }
  return "?";
}

const char* l3_event_name(L3Event e) {
  switch (e) {
    case L3Event::kReadAccess: return "READ_ACCESS";
    case L3Event::kReadHit: return "READ_HIT";
    case L3Event::kReadMiss: return "READ_MISS";
    case L3Event::kWriteAccess: return "WRITE_ACCESS";
    case L3Event::kWriteHit: return "WRITE_HIT";
    case L3Event::kWriteMiss: return "WRITE_MISS";
    case L3Event::kFillFromDdr: return "FILL_FROM_DDR";
    case L3Event::kWritebackToDdr: return "WRITEBACK_TO_DDR";
    case L3Event::kEvict: return "EVICT";
  }
  return "?";
}

const char* ddr_event_name(DdrEvent e) {
  switch (e) {
    case DdrEvent::kReadReq: return "READ_REQ";
    case DdrEvent::kWriteReq: return "WRITE_REQ";
    case DdrEvent::kBytesRead16B: return "BYTES_READ_16B";
    case DdrEvent::kBytesWritten16B: return "BYTES_WRITTEN_16B";
    case DdrEvent::kBusyCycles: return "BUSY_CYCLES";
    case DdrEvent::kQueueStallCycles: return "QUEUE_STALL_CYCLES";
  }
  return "?";
}

const char* snoop_event_name(SnoopEvent e) {
  switch (e) {
    case SnoopEvent::kRequests: return "REQUESTS";
    case SnoopEvent::kFilterHits: return "FILTER_HITS";
    case SnoopEvent::kInvalidatesSent: return "INVALIDATES_SENT";
    case SnoopEvent::kInvalidatesReceived: return "INVALIDATES_RECEIVED";
  }
  return "?";
}

const char* torus_event_name(TorusEvent e) {
  switch (e) {
    case TorusEvent::kPacketsSentXp: return "PACKETS_SENT_XP";
    case TorusEvent::kPacketsSentXm: return "PACKETS_SENT_XM";
    case TorusEvent::kPacketsSentYp: return "PACKETS_SENT_YP";
    case TorusEvent::kPacketsSentYm: return "PACKETS_SENT_YM";
    case TorusEvent::kPacketsSentZp: return "PACKETS_SENT_ZP";
    case TorusEvent::kPacketsSentZm: return "PACKETS_SENT_ZM";
    case TorusEvent::kPacketsReceived: return "PACKETS_RECEIVED";
    case TorusEvent::kBytesSent32B: return "BYTES_SENT_32B";
    case TorusEvent::kBytesRecv32B: return "BYTES_RECV_32B";
    case TorusEvent::kHopsTotal: return "HOPS_TOTAL";
    case TorusEvent::kSendStallCycles: return "SEND_STALL_CYCLES";
  }
  return "?";
}

const char* collective_event_name(CollectiveEvent e) {
  switch (e) {
    case CollectiveEvent::kOperations: return "OPERATIONS";
    case CollectiveEvent::kBytes32B: return "BYTES_32B";
    case CollectiveEvent::kLatencyCycles: return "LATENCY_CYCLES";
  }
  return "?";
}

const char* barrier_event_name(BarrierEvent e) {
  switch (e) {
    case BarrierEvent::kEntries: return "ENTRIES";
    case BarrierEvent::kWaitCycles: return "WAIT_CYCLES";
  }
  return "?";
}

// Owns the composed name strings so EventInfo::name views stay valid.
struct TableHolder {
  std::vector<std::string> names;
  std::vector<EventInfo> infos;
};

TableHolder build_table() {
  TableHolder t;
  t.names.resize(kNumEvents);
  t.infos.resize(kNumEvents);
  for (u16 id = 0; id < kNumEvents; ++id) {
    t.infos[id] = EventInfo{id, Unit::kReserved, "RESERVED"};
  }

  auto set = [&](EventId id, Unit unit, std::string name) {
    t.names[id] = std::move(name);
    t.infos[id] = EventInfo{id, unit, t.names[id]};
  };

  for (unsigned core = 0; core < kCoresPerNode; ++core) {
    for (unsigned i = 0; i < kNumFpOps; ++i) {
      const auto op = static_cast<FpOp>(i);
      set(ev::fpu_op(core, op), Unit::kFpu,
          strfmt("CORE%u_%s", core, std::string(to_string(op)).c_str()));
    }
    for (unsigned i = 0; i < kNumLsOps; ++i) {
      const auto op = static_cast<LsOp>(i);
      set(ev::ls_op(core, op), Unit::kCore,
          strfmt("CORE%u_%s", core, std::string(to_string(op)).c_str()));
    }
    for (unsigned i = 0; i < kNumIntOps; ++i) {
      const auto op = static_cast<IntOp>(i);
      set(ev::int_op(core, op), Unit::kCore,
          strfmt("CORE%u_%s", core, std::string(to_string(op)).c_str()));
    }
    set(ev::cycle_count(core), Unit::kCore, strfmt("CORE%u_CYCLE_COUNT", core));
    set(ev::instr_completed(core), Unit::kCore,
        strfmt("CORE%u_INSTR_COMPLETED", core));
    for (unsigned i = 0; i < kNumL1dEvents; ++i) {
      const auto e = static_cast<L1dEvent>(i);
      set(ev::l1d(core, e), Unit::kL1d,
          strfmt("CORE%u_L1D_%s", core, l1d_event_name(e)));
    }
    for (unsigned i = 0; i < kNumL1iEvents; ++i) {
      const auto e = static_cast<L1iEvent>(i);
      set(ev::l1i(core, e), Unit::kL1i,
          strfmt("CORE%u_L1I_%s", core,
                 e == L1iEvent::kAccess ? "ACCESS" : "MISS"));
    }
    for (unsigned i = 0; i < kNumL2Events; ++i) {
      const auto e = static_cast<L2Event>(i);
      set(ev::l2(core, e), Unit::kL2,
          strfmt("CORE%u_L2_%s", core, l2_event_name(e)));
    }
  }

  for (unsigned i = 0; i < kNumL3Events; ++i) {
    const auto e = static_cast<L3Event>(i);
    set(ev::l3(e), Unit::kL3, strfmt("L3_%s", l3_event_name(e)));
  }
  for (unsigned c = 0; c < kNumDdrControllers; ++c) {
    for (unsigned i = 0; i < kNumDdrEvents; ++i) {
      const auto e = static_cast<DdrEvent>(i);
      set(ev::ddr(c, e), Unit::kDdr, strfmt("DDR%u_%s", c, ddr_event_name(e)));
    }
  }
  for (unsigned i = 0; i < kNumSnoopEvents; ++i) {
    const auto e = static_cast<SnoopEvent>(i);
    set(ev::snoop(e), Unit::kSnoop, strfmt("SNOOP_%s", snoop_event_name(e)));
  }

  for (unsigned i = 0; i < kNumTorusEvents; ++i) {
    const auto e = static_cast<TorusEvent>(i);
    set(ev::torus(e), Unit::kTorus, strfmt("TORUS_%s", torus_event_name(e)));
  }
  for (unsigned i = 0; i < kNumCollectiveEvents; ++i) {
    const auto e = static_cast<CollectiveEvent>(i);
    set(ev::collective(e), Unit::kCollective,
        strfmt("COLLECTIVE_%s", collective_event_name(e)));
  }
  for (unsigned i = 0; i < kNumBarrierEvents; ++i) {
    const auto e = static_cast<BarrierEvent>(i);
    set(ev::barrier(e), Unit::kBarrier,
        strfmt("BARRIER_%s", barrier_event_name(e)));
  }

  for (unsigned slot = 0; slot < kCoresPerNode; ++slot) {
    for (unsigned i = 0; i < kNumSysEvents; ++i) {
      const auto e = static_cast<SysEvent>(i);
      set(ev::system(e, slot), Unit::kSystem,
          strfmt("SLOT%u_%s", slot, sys_event_name(e)));
    }
  }

  return t;
}

const TableHolder& table_holder() {
  static const TableHolder t = build_table();
  return t;
}

}  // namespace

const std::vector<EventInfo>& event_table() { return table_holder().infos; }

const EventInfo& event_info(EventId id) {
  if (id >= kNumEvents) {
    throw std::out_of_range("event id out of range");
  }
  return table_holder().infos[id];
}

}  // namespace bgp::isa
