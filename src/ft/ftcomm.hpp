// ULFM-style recovery operations over the MiniMPI rank communicator:
// revoke / agree / shrink, plus the guarded-execution helpers kernels use
// to ride through injected node deaths instead of cascading.
//
// Mapping to User-Level Failure Mitigation (the fault-tolerant Open MPI
// lineage in /root/related — see docs/fault-tolerance.md):
//   revoke()  ~ MPI_Comm_revoke   (notification over the barrier network)
//   agree()   ~ MPI_Comm_agree    (consensus on the failed set, two tree
//                                  reductions over the collective network)
//   shrink()  ~ MPI_Comm_shrink   (survivor communicator, ranks renumbered)
// All three are legal on a revoked communicator; their cycle costs are
// modeled through the existing CollectiveNet/BarrierNet and logged as
// RecoveryEvents that end up in every survivor's dump (format v3).
#pragma once

#include <functional>
#include <vector>

#include "ft/ftypes.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::ft {

class FtComm {
 public:
  /// Bind to a rank's context. Requires Machine::set_ft_params with
  /// enabled=true; operations throw std::logic_error otherwise.
  explicit FtComm(rt::RankCtx& ctx);

  /// Current communicator membership (global ranks, ascending).
  [[nodiscard]] std::vector<unsigned> group() const;
  /// This rank's position in group(): the renumbered rank after shrinks.
  [[nodiscard]] unsigned new_rank() const;
  /// Survivor communicator size.
  [[nodiscard]] unsigned size() const;
  /// Number of shrinks performed so far.
  [[nodiscard]] unsigned epoch() const;

  /// Revoke the communicator: every survivor's pending or future plain
  /// communication call raises RevokedError until a shrink completes. The
  /// notification propagates over the barrier network; its latency is
  /// billed to this core. Idempotent on an already-revoked communicator.
  void revoke();

  /// Reduction-based consensus on the failed set: every live member
  /// contributes the failures it knows of, two passes over the (pruned)
  /// collective tree OR them together. Returns the agreed failed global
  /// ranks, ascending. Callable while revoked.
  [[nodiscard]] std::vector<unsigned> agree();

  /// Rebuild the communicator over the survivors (current group minus
  /// `failed`), renumbering ranks by ascending global rank. Clears the
  /// revocation; subsequent collectives route around the dead nodes.
  void shrink(const std::vector<unsigned>& failed);

  /// The canonical recovery episode: revoke, agree, shrink. Returns the
  /// agreed failed set.
  std::vector<unsigned> recover();

 private:
  rt::RankCtx& ctx_;
};

/// Run `fn` under ULFM error handling: on ProcFailedError or RevokedError
/// the rank runs one recovery episode (revoke + agree + shrink) and returns
/// false ("degraded"); a clean pass returns true. Without FT enabled this
/// is just fn(ctx). NodeDeathFault (own death) always propagates.
bool run_guarded(rt::RankCtx& ctx, const std::function<void(rt::RankCtx&)>& fn);

/// mpi_finalize that retries through failures detected inside the final
/// barrier (compound deaths): recover, re-enter, bounded by the rank count.
/// Guarantees the finalize hook (BGP_Stop/BGP_Finalize -> dump) runs on
/// every survivor.
void finalize_guarded(rt::RankCtx& ctx);

}  // namespace bgp::ft
