#include "ft/ftcomm.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/strfmt.hpp"
#include "runtime/machine.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::ft {

namespace {

constexpr unsigned kWordBits = 64;

void require_enabled(const rt::Machine& m) {
  if (!m.ft_params().enabled) {
    throw std::logic_error(
        "FtComm requires Machine::set_ft_params with enabled=true");
  }
}

}  // namespace

FtComm::FtComm(rt::RankCtx& ctx) : ctx_(ctx) {}

std::vector<unsigned> FtComm::group() const {
  return ctx_.machine().comm_group();
}

unsigned FtComm::new_rank() const {
  const auto& g = ctx_.machine().comm_group();
  const auto it = std::find(g.begin(), g.end(), ctx_.rank());
  if (it == g.end()) {
    throw std::logic_error(
        strfmt("rank %u is not a member of the shrunk communicator",
               ctx_.rank()));
  }
  return static_cast<unsigned>(it - g.begin());
}

unsigned FtComm::size() const {
  return static_cast<unsigned>(ctx_.machine().comm_group().size());
}

unsigned FtComm::epoch() const { return ctx_.machine().comm_epoch(); }

void FtComm::revoke() {
  rt::Machine& m = ctx_.machine();
  require_enabled(m);
  rt::ObsScope span(ctx_, "ft.revoke", obs::SpanCat::kFt);
  // The revocation rides the global-interrupt network: one barrier-net
  // traversal over the live nodes, billed to the revoking core. A second
  // revoke of an already-revoked communicator still pays (the interrupt is
  // raised again) but wakes nobody.
  const cycles_t cost =
      m.partition().barrier_net().barrier_cycles_live(m.live_comm_nodes());
  ctx_.compute_cycles(cost);
  m.revoke_comm(ctx_.rank(), cost);
  if (auto* fr = obs::recorder()) fr->wk().ft_revokes->add(1);
}

std::vector<unsigned> FtComm::agree() {
  rt::Machine& m = ctx_.machine();
  require_enabled(m);
  rt::ObsScope span(ctx_, "ft.agree", obs::SpanCat::kFt);
  const unsigned p = m.num_ranks();
  const unsigned words = (p + kWordBits - 1) / kWordBits;
  // Contribution: the failures this rank can observe at entry. The combine
  // ORs every contribution and folds in the machine's authoritative view,
  // which covers members that die mid-agreement (they never arrive, but
  // their death is visible by the time the operation completes).
  std::vector<u64> mask(words, 0);
  for (unsigned r = 0; r < p; ++r) {
    if (m.rank_died(r)) mask[r / kWordBits] |= u64{1} << (r % kWordBits);
  }
  const u64 bytes = u64{words} * sizeof(u64);
  const cycles_t latency =
      2 * m.partition().collective().op_cycles_live(bytes,
                                                    m.live_comm_nodes());
  auto& part = m.partition();
  m.enter_collective(
      ctx_.rank(), rt::kCollAgree, bytes, 0,
      std::as_bytes(std::span<const u64>(mask)),
      std::as_writable_bytes(std::span<u64>(mask)),
      [&m, &part, words, latency](rt::Machine::Collective& coll) {
        std::vector<u64> acc(words, 0);
        for (const auto& member : coll.members) {
          if (!member.present) continue;
          for (unsigned w = 0; w < words; ++w) {
            u64 v = 0;
            std::memcpy(&v, member.send.data() + w * sizeof(u64),
                        sizeof(u64));
            acc[w] |= v;
          }
        }
        unsigned agreed = 0;
        for (unsigned r = 0; r < m.num_ranks(); ++r) {
          if (m.rank_died(r)) acc[r / kWordBits] |= u64{1} << (r % kWordBits);
        }
        for (const u64 w : acc) agreed += static_cast<unsigned>(std::popcount(w));
        for (const auto& member : coll.members) {
          if (!member.present) continue;
          std::memcpy(member.recv.data(), acc.data(), coll.bytes);
        }
        part.collective().record_operation(coll.bytes, coll.op_latency);
        m.recovery_log_.push_back(RecoveryEvent{
            .kind = RecoveryKind::kAgree,
            .node = RecoveryEvent::kNoNode,
            .rank = RecoveryEvent::kNoRank,
            .cycle = coll.max_arrival + coll.op_latency,
            .cost = latency,
            .aux = agreed,
        });
      },
      latency);
  std::vector<unsigned> failed;
  for (unsigned r = 0; r < p; ++r) {
    if ((mask[r / kWordBits] >> (r % kWordBits)) & 1) failed.push_back(r);
  }
  if (auto* fr = obs::recorder()) fr->wk().ft_agreements->add(1);
  return failed;
}

void FtComm::shrink(const std::vector<unsigned>& failed) {
  rt::Machine& m = ctx_.machine();
  require_enabled(m);
  rt::ObsScope span(ctx_, "ft.shrink", obs::SpanCat::kFt);
  std::vector<unsigned> survivors;
  survivors.reserve(m.comm_group().size());
  for (const unsigned r : m.comm_group()) {
    if (std::find(failed.begin(), failed.end(), r) == failed.end()) {
      survivors.push_back(r);
    }
  }
  // Cost model: distribute the survivor rank map over the pruned tree,
  // then a barrier to activate the new communicator epoch.
  const u64 bytes = u64{survivors.size()} * sizeof(u32);
  const unsigned live = m.live_comm_nodes();
  const cycles_t cost =
      m.partition().collective().op_cycles_live(bytes, live) +
      m.partition().barrier_net().barrier_cycles_live(live);
  auto& part = m.partition();
  m.enter_collective(
      ctx_.rank(), rt::kCollShrink, bytes, 0, {}, {},
      [&m, &part, survivors, cost](rt::Machine::Collective& coll) {
        part.collective().record_operation(coll.bytes, coll.op_latency);
        m.apply_shrink(survivors, coll.max_arrival + coll.op_latency, cost);
      },
      cost);
  if (auto* fr = obs::recorder()) fr->wk().ft_shrinks->add(1);
}

std::vector<unsigned> FtComm::recover() {
  revoke();
  std::vector<unsigned> failed = agree();
  shrink(failed);
  return failed;
}

bool run_guarded(rt::RankCtx& ctx,
                 const std::function<void(rt::RankCtx&)>& fn) {
  if (!ctx.machine().ft_params().enabled) {
    fn(ctx);
    return true;
  }
  try {
    fn(ctx);
    return true;
  } catch (const ProcFailedError&) {
  } catch (const RevokedError&) {
  }
  FtComm(ctx).recover();
  return false;
}

void finalize_guarded(rt::RankCtx& ctx) {
  rt::Machine& m = ctx.machine();
  if (!m.ft_params().enabled) {
    ctx.mpi_finalize();
    return;
  }
  FtComm comm(ctx);
  // Each failed round removes at least one dead rank from the
  // communicator, so the retry budget is bounded by the rank count.
  const unsigned budget = m.num_ranks() + 1;
  for (unsigned round = 0; round < budget; ++round) {
    try {
      ctx.mpi_finalize();
      return;
    } catch (const ProcFailedError&) {
    } catch (const RevokedError&) {
    }
    comm.recover();
  }
  throw std::runtime_error(
      strfmt("rank %u: mpi_finalize did not complete within %u recovery "
             "rounds",
             ctx.rank(), budget));
}

}  // namespace bgp::ft
