// ULFM-style fault-tolerance vocabulary shared between the MiniMPI runtime
// and the recovery layer (src/ft/ftcomm.*). Header-only so bgp_runtime can
// speak these types without linking against bgp_ft.
//
// The model follows User-Level Failure Mitigation (the fault-tolerant Open
// MPI lineage): a communication call involving a failed peer returns an
// error (ProcFailedError ~ MPI_ERR_PROC_FAILED) instead of hanging or
// killing the caller; any survivor may then revoke the communicator
// (RevokedError ~ MPI_ERR_REVOKED interrupts everyone else's pending
// calls), after which the survivors agree on the failed set and shrink the
// communicator to continue. Every step is billed deterministic cycle costs
// and logged as a RecoveryEvent so the dump/mining pipeline can account for
// the ranks the run lost.
#pragma once

#include <stdexcept>
#include <string>

#include "common/strfmt.hpp"
#include "common/types.hpp"

namespace bgp::ft {

/// Runtime knobs for the failure-detection layer (Machine::set_ft_params).
struct FtParams {
  /// Off by default: without FT an injected death cascades exactly as in
  /// the plain fault-injection layer (blocked peers inherit the death).
  bool enabled = false;
  /// Cycles between a peer's failure becoming observable at a blocked or
  /// communicating rank and that rank's call raising ProcFailedError —
  /// the heartbeat/timeout latency of a real detector, billed to the
  /// detecting core.
  cycles_t detect_latency = 2000;
};

/// One step of a recovery episode, in simulated time.
enum class RecoveryKind : u32 {
  kDeathDetected = 0,  ///< first survivor observed this node's death
  kRevoke = 1,         ///< communicator revoked over the barrier network
  kAgree = 2,          ///< reduction-based consensus on the failed set
  kShrink = 3,         ///< communicator rebuilt over the survivors
};

[[nodiscard]] constexpr const char* to_string(RecoveryKind kind) noexcept {
  switch (kind) {
    case RecoveryKind::kDeathDetected: return "death-detected";
    case RecoveryKind::kRevoke: return "revoke";
    case RecoveryKind::kAgree: return "agree";
    case RecoveryKind::kShrink: return "shrink";
  }
  return "?";
}

/// Recovery log entry; serialized verbatim into dump v3's recovery section.
struct RecoveryEvent {
  static constexpr u32 kNoNode = ~u32{0};
  static constexpr u32 kNoRank = ~u32{0};

  RecoveryKind kind = RecoveryKind::kDeathDetected;
  u32 node = kNoNode;  ///< dead node (kDeathDetected), else kNoNode
  u32 rank = kNoRank;  ///< detecting/initiating global rank, if any
  u64 cycle = 0;       ///< simulated cycle the step completed
  u64 cost = 0;        ///< cycles billed for the step
  /// kDeathDetected: the node's injected death cycle. kAgree: agreed failed
  /// rank count. kShrink: communicator size after the shrink.
  u64 aux = 0;

  friend bool operator==(const RecoveryEvent&,
                         const RecoveryEvent&) = default;
};

[[nodiscard]] inline std::string describe(const RecoveryEvent& e) {
  switch (e.kind) {
    case RecoveryKind::kDeathDetected:
      return strfmt("node %u death (cycle %llu) detected by rank %u at cycle "
                    "%llu (+%llu cycles)",
                    e.node, static_cast<unsigned long long>(e.aux), e.rank,
                    static_cast<unsigned long long>(e.cycle),
                    static_cast<unsigned long long>(e.cost));
    case RecoveryKind::kRevoke:
      return strfmt("communicator revoked by rank %u at cycle %llu (+%llu "
                    "cycles over the barrier network)",
                    e.rank, static_cast<unsigned long long>(e.cycle),
                    static_cast<unsigned long long>(e.cost));
    case RecoveryKind::kAgree:
      return strfmt("agreement on %llu failed rank(s) at cycle %llu (+%llu "
                    "cycles, two tree reductions)",
                    static_cast<unsigned long long>(e.aux),
                    static_cast<unsigned long long>(e.cycle),
                    static_cast<unsigned long long>(e.cost));
    case RecoveryKind::kShrink:
      return strfmt("communicator shrunk to %llu rank(s) at cycle %llu "
                    "(+%llu cycles)",
                    static_cast<unsigned long long>(e.aux),
                    static_cast<unsigned long long>(e.cycle),
                    static_cast<unsigned long long>(e.cost));
  }
  return "?";
}

/// A communication call observed a failed peer (~ MPI_ERR_PROC_FAILED).
/// Without a recovery handler (ft::run_guarded) this is fatal to the rank,
/// matching ULFM's default MPI_ERRORS_ARE_FATAL.
struct ProcFailedError : std::runtime_error {
  explicit ProcFailedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The communicator was revoked by a survivor (~ MPI_ERR_REVOKED): every
/// pending or future plain communication call on it raises this until a
/// shrink installs the survivor communicator.
struct RevokedError : std::runtime_error {
  explicit RevokedError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace bgp::ft
