// PPC450 core timing model. The PowerPC 450 is a 2-way superscalar,
// 7-stage-pipeline embedded core; each BG/P core carries a dual-pipeline
// SIMD floating point unit ("double hummer") able to complete one FP
// instruction per cycle — up to 4 flops/cycle via SIMD FMA, giving the
// node's 13.6 GFLOPS peak at 850 MHz.
//
// The model is a bottleneck/occupancy model: a compiled op bundle costs
// max(issue slots / width, FPU occupancy, LSU occupancy) plus branch
// misprediction and divide penalties. Memory stalls are charged separately
// (see runtime::RankCtx), because they come from the cache walk of the real
// address streams.
#pragma once

#include <span>

#include "isa/events.hpp"
#include "isa/ops.hpp"
#include "mem/sink.hpp"

namespace bgp::cpu {

struct CoreParams {
  unsigned issue_width = 2;
  /// Unpipelined FP divide occupancy.
  cycles_t fp_div_cycles = 28;
  /// Extra pipeline-refill penalty per mispredicted branch (7-stage pipe).
  cycles_t mispredict_penalty = 7;
  /// Fraction of branches mispredicted (loop-dominated HPC codes predict
  /// extremely well).
  double mispredict_rate = 0.02;
  /// Link/return/spill overhead per un-inlined call (pair).
  cycles_t call_cost = 8;
};

/// Per-core execution statistics (independent of UPC wiring).
struct CoreStats {
  u64 instructions = 0;
  u64 flops = 0;
  cycles_t compute_cycles = 0;
  cycles_t memory_stall_cycles = 0;
  cycles_t wait_cycles = 0;  ///< time blocked in communication

  [[nodiscard]] cycles_t total_cycles() const noexcept {
    return compute_cycles + memory_stall_cycles + wait_cycles;
  }
};

/// One PPC450 core. The runtime guarantees single-threaded access.
class Core {
 public:
  Core(unsigned id, const CoreParams& params,
       mem::EventSink* sink = nullptr) noexcept;

  [[nodiscard]] unsigned id() const noexcept { return id_; }

  /// Current core time in cycles (also the Time Base value).
  [[nodiscard]] cycles_t now() const noexcept { return now_; }

  /// Read the Time Base register (counts like the UPC CYCLE_COUNT event;
  /// the interface library's overhead check compares against it, §IV).
  [[nodiscard]] cycles_t read_timebase() noexcept;

  /// Execute a machine op bundle: charge compute cycles and signal the
  /// per-op UPC events. Returns the cycles charged.
  cycles_t execute(const isa::OpMix& mix);

  /// Batched form of execute(): `prebased` is the bundle's delivery-ready
  /// event batch for THIS core — the compile cache's precomputed vector of
  /// this core's mode-0 ids with the bundle's CYCLE_COUNT (equal to
  /// bundle_cycles(mix, params)) appended last; see opt::CompiledLoop::
  /// core_events. The batch is handed to the sink in one call with zero
  /// per-call copying or rebasing; counter totals and CoreStats are
  /// identical to execute(mix).
  cycles_t execute_block(const isa::OpMix& mix,
                         std::span<const isa::EventCount> prebased);

  /// Charge exposed memory-stall cycles (from the hierarchy walk, already
  /// divided by the loop's overlap factor).
  void stall(cycles_t cycles);

  /// Charge blocked-in-communication cycles.
  void wait(cycles_t cycles);

  /// Charge raw cycles with no instruction activity (runtime overheads,
  /// e.g. the interface library's 196-cycle instrumentation cost).
  void advance(cycles_t cycles);

  /// Jump the core's clock forward to `t` (collective synchronization);
  /// no-op if `t` is in the past. The skipped time counts as wait.
  void sync_to(cycles_t t);

  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CoreParams& params() const noexcept { return params_; }

  /// Pure function: compute cycles the bundle occupies, given the params.
  [[nodiscard]] static cycles_t bundle_cycles(const isa::OpMix& mix,
                                              const CoreParams& params);

 private:
  void tick(cycles_t cycles);  // advance clock + CYCLE_COUNT event

  unsigned id_;
  CoreParams params_;
  mem::EventSink* sink_;
  cycles_t now_ = 0;
  CoreStats stats_;
};

}  // namespace bgp::cpu
