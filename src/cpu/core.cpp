#include "cpu/core.hpp"

#include <algorithm>
#include <cmath>

namespace bgp::cpu {

namespace ev = isa::ev;

Core::Core(unsigned id, const CoreParams& params,
           mem::EventSink* sink) noexcept
    : id_(id), params_(params), sink_(sink) {}

void Core::tick(cycles_t cycles) {
  now_ += cycles;
  mem::emit(sink_, ev::cycle_count(id_), cycles);
}

cycles_t Core::read_timebase() noexcept {
  mem::emit(sink_, ev::system(isa::SysEvent::kTimebaseReads, id_), 1);
  return now_;
}

cycles_t Core::bundle_cycles(const isa::OpMix& mix, const CoreParams& params) {
  const u64 total = mix.total_instructions();
  if (total == 0) return 0;

  // Issue bound: two instructions per cycle through the front end.
  const u64 issue =
      (total + params.issue_width - 1) / params.issue_width;

  // FPU occupancy: every FP instruction (scalar or SIMD) occupies the unit
  // one cycle; divides are unpipelined.
  const u64 divs = mix.fp_at(isa::FpOp::kDiv) + mix.fp_at(isa::FpOp::kSimdDiv);
  const u64 fpu =
      (mix.total_fp_instructions() - divs) + divs * params.fp_div_cycles;

  // LSU occupancy: one load/store per cycle regardless of width (quad
  // load/stores move 16 B in the same slot — that is the SIMD win).
  u64 lsu = 0;
  for (u64 c : mix.ls) lsu += c;

  const u64 busiest = std::max({issue, fpu, lsu});

  // Branch mispredictions refill the 7-stage pipe.
  const u64 branches = mix.int_at(isa::IntOp::kBranch);
  const auto mispredicts = static_cast<u64>(
      std::llround(static_cast<double>(branches) * params.mispredict_rate));
  // Calls pay a fixed link/return overhead pair.
  const u64 call_cost = mix.int_at(isa::IntOp::kCall) * params.call_cost;

  return busiest + mispredicts * params.mispredict_penalty + call_cost;
}

cycles_t Core::execute(const isa::OpMix& mix) {
  const cycles_t cycles = bundle_cycles(mix, params_);
  stats_.instructions += mix.total_instructions();
  stats_.flops += mix.total_flops();
  stats_.compute_cycles += cycles;

  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < isa::kNumFpOps; ++i) {
      mem::emit(sink_, ev::fpu_op(id_, static_cast<isa::FpOp>(i)), mix.fp[i]);
    }
    for (std::size_t i = 0; i < isa::kNumLsOps; ++i) {
      mem::emit(sink_, ev::ls_op(id_, static_cast<isa::LsOp>(i)), mix.ls[i]);
    }
    for (std::size_t i = 0; i < isa::kNumIntOps; ++i) {
      mem::emit(sink_, ev::int_op(id_, static_cast<isa::IntOp>(i)), mix.in[i]);
    }
    mem::emit(sink_, ev::instr_completed(id_), mix.total_instructions());
  }
  tick(cycles);
  return cycles;
}

cycles_t Core::execute_block(const isa::OpMix& mix,
                             std::span<const isa::EventCount> prebased) {
  const cycles_t cycles = bundle_cycles(mix, params_);
  stats_.instructions += mix.total_instructions();
  stats_.flops += mix.total_flops();
  stats_.compute_cycles += cycles;

  // The batch already carries this core's ids and the tick's CYCLE_COUNT
  // (the compile cache rebased and appended them once), so delivery is a
  // single virtual call over a stable vector — no copying here.
  if (sink_ != nullptr && !prebased.empty()) {
    sink_->events(prebased.data(), prebased.size());
  }
  now_ += cycles;
  return cycles;
}

void Core::stall(cycles_t cycles) {
  stats_.memory_stall_cycles += cycles;
  tick(cycles);
}

void Core::wait(cycles_t cycles) {
  stats_.wait_cycles += cycles;
  tick(cycles);
}

void Core::advance(cycles_t cycles) {
  stats_.compute_cycles += cycles;
  tick(cycles);
}

void Core::sync_to(cycles_t t) {
  if (t > now_) {
    wait(t - now_);
  }
}

}  // namespace bgp::cpu
