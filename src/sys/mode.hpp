// Blue Gene/P node operating modes (paper Fig 3): how the four cores of a
// node are split between MPI processes and threads.
//
//   SMP/1 thread :  1 process,  1 thread  (3 cores idle)
//   SMP/4 threads:  1 process,  4 threads
//   Dual mode    :  2 processes, 2 threads each
//   Virtual Node :  4 processes, 1 thread each
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace bgp::sys {

enum class OpMode : u8 {
  kSmp1 = 0,  ///< SMP, 1 thread
  kSmp4,      ///< SMP, 4 threads
  kDual,      ///< Dual mode
  kVnm,       ///< Virtual Node Mode
};

[[nodiscard]] constexpr unsigned processes_per_node(OpMode m) noexcept {
  switch (m) {
    case OpMode::kSmp1:
    case OpMode::kSmp4: return 1;
    case OpMode::kDual: return 2;
    case OpMode::kVnm: return 4;
  }
  return 1;
}

[[nodiscard]] constexpr unsigned threads_per_process(OpMode m) noexcept {
  switch (m) {
    case OpMode::kSmp1: return 1;
    case OpMode::kSmp4: return 4;
    case OpMode::kDual: return 2;
    case OpMode::kVnm: return 1;
  }
  return 1;
}

/// First core a process occupies: processes are packed onto consecutive
/// cores, each owning threads_per_process of them.
[[nodiscard]] constexpr unsigned first_core_of_process(OpMode m,
                                                       unsigned proc) noexcept {
  return proc * threads_per_process(m);
}

[[nodiscard]] std::string_view to_string(OpMode m) noexcept;

/// Parse "smp1"/"smp"/"smp4"/"dual"/"vnm" (case-sensitive).
[[nodiscard]] OpMode parse_mode(std::string_view name);

}  // namespace bgp::sys
