#include "sys/node.hpp"

namespace bgp::sys {

Node::Node(unsigned id, const BootOptions& boot)
    : id_(id), boot_(boot), upc_(), sink_(upc_) {
  mem::HierarchyParams hp;
  hp.l3_size_bytes = boot.l3_size_bytes;
  hp.prefetch = boot.prefetch;
  hp.legacy_walk = boot.legacy_mem_walk;
  mem_ = std::make_unique<mem::MemoryHierarchy>(hp, &sink_);
  for (unsigned c = 0; c < isa::kCoresPerNode; ++c) {
    cores_[c] = std::make_unique<cpu::Core>(c, cpu::CoreParams{}, &sink_);
  }
}

cycles_t Node::timebase() const noexcept {
  cycles_t t = 0;
  for (const auto& c : cores_) {
    t = std::max(t, c->now());
  }
  return t;
}

}  // namespace bgp::sys
