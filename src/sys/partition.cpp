#include "sys/partition.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::sys {

Partition::Partition(unsigned num_nodes, OpMode mode, const BootOptions& boot)
    : mode_(mode), boot_(boot) {
  if (num_nodes == 0) {
    throw std::invalid_argument("partition needs at least one node");
  }
  nodes_.reserve(num_nodes);
  for (unsigned i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, boot));
  }
  torus_ = std::make_unique<net::Torus>(net::Shape::for_nodes(num_nodes));
  coll_ = std::make_unique<net::CollectiveNet>(num_nodes);
  barrier_ = std::make_unique<net::BarrierNet>(num_nodes);
  for (unsigned i = 0; i < num_nodes; ++i) {
    torus_->attach_sink(i, nodes_[i]->sink());
    coll_->attach_sink(i, nodes_[i]->sink());
    barrier_->attach_sink(i, nodes_[i]->sink());
  }
}

Placement Partition::placement(unsigned rank) const {
  const unsigned ppn = processes_per_node(mode_);
  if (rank >= num_ranks()) {
    throw std::out_of_range(
        strfmt("rank %u out of range (%u ranks)", rank, num_ranks()));
  }
  const unsigned node = rank / ppn;
  const unsigned proc = rank % ppn;
  return Placement{node, first_core_of_process(mode_, proc), proc};
}

}  // namespace bgp::sys
