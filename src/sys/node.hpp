// One Blue Gene/P compute node (paper Fig 2): four PPC450 cores with their
// SIMD FPUs, the private L1/L2 caches, the shared L3, two DDR controllers,
// the snoop filter and the node's UPC unit. All hardware event sources are
// wired into the UPC through the node's EventSink.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hpp"
#include "mem/hierarchy.hpp"
#include "upc/upc_unit.hpp"

namespace bgp::sys {

/// Boot-time configuration, the moral equivalent of the paper's "svchost
/// options while booting a node" (§VIII uses them to resize the L3).
struct BootOptions {
  /// Shared L3 capacity; 0 disables the L3 entirely. Must keep the cache
  /// geometry valid (multiple of line*assoc).
  u64 l3_size_bytes = 8 * MiB;
  /// L2 stream-prefetcher settings (paper §IX: "vary the prefetch amount").
  mem::PrefetchParams prefetch{};
  /// Nodes per node card; card parity selects which half of the event space
  /// a node monitors (§IV's 512-events-in-one-run scheme).
  unsigned nodes_per_card = 2;
  /// Route memory traffic through the original per-event virtual cache
  /// walk instead of the devirtualized batched one (identical simulated
  /// behaviour; exists for identity tests and before/after benches).
  bool legacy_mem_walk = false;
};

/// One compute node.
class Node {
 public:
  Node(unsigned id, const BootOptions& boot = {});

  [[nodiscard]] unsigned id() const noexcept { return id_; }
  [[nodiscard]] unsigned card_id() const noexcept {
    return id_ / boot_.nodes_per_card;
  }
  /// Even-numbered node cards monitor the first half of the event space
  /// (modes 0-1), odd cards the second half (modes 2-3) — or whichever
  /// split the interface library programs.
  [[nodiscard]] bool even_card() const noexcept { return card_id() % 2 == 0; }

  [[nodiscard]] upc::UpcUnit& upc() noexcept { return upc_; }
  [[nodiscard]] const upc::UpcUnit& upc() const noexcept { return upc_; }
  [[nodiscard]] mem::MemoryHierarchy& memory() noexcept { return *mem_; }
  [[nodiscard]] const mem::MemoryHierarchy& memory() const noexcept {
    return *mem_;
  }
  [[nodiscard]] cpu::Core& core(unsigned i) { return *cores_.at(i); }
  [[nodiscard]] const cpu::Core& core(unsigned i) const {
    return *cores_.at(i);
  }
  [[nodiscard]] const BootOptions& boot() const noexcept { return boot_; }

  /// The node's event sink (forwards into the UPC unit); networks and the
  /// runtime attach through this.
  [[nodiscard]] mem::EventSink* sink() noexcept { return &sink_; }

  /// Node Time Base: the maximum core clock (cores are kept loosely in sync
  /// by the runtime; TB is globally synchronized on real hardware).
  [[nodiscard]] cycles_t timebase() const noexcept;

  /// Instrumentation pulse hook: monitoring agents (the tracing sampler,
  /// the snapshot publisher) register here and the runtime pulses the node
  /// at instrumentation points (loop boundaries). Each hook returns the
  /// modeled overhead in cycles the pulsing core must absorb (0 when
  /// nothing was due); multiple agents stack and their overheads add.
  using PulseHook = std::function<cycles_t(cycles_t now)>;
  void set_pulse_hook(PulseHook hook) {
    pulse_hooks_.clear();
    add_pulse_hook(std::move(hook));
  }
  /// Register an additional agent without displacing the ones already
  /// installed (the tracer and the snapshot publisher coexist).
  void add_pulse_hook(PulseHook hook) {
    if (hook) pulse_hooks_.push_back(std::move(hook));
  }
  [[nodiscard]] bool has_pulse_hook() const noexcept {
    return !pulse_hooks_.empty();
  }
  /// Deliver a pulse; cheap no-op when no hook is installed.
  cycles_t pulse(cycles_t now) {
    cycles_t overhead = 0;
    for (auto& hook : pulse_hooks_) overhead += hook(now);
    return overhead;
  }

 private:
  /// Forwards hardware events into the UPC unit.
  class UpcSink final : public mem::EventSink {
   public:
    explicit UpcSink(upc::UpcUnit& upc) noexcept : upc_(upc) {}
    void event(isa::EventId id, u64 count) override { upc_.signal(id, count); }
    void events(const isa::EventCount* batch, std::size_t n) override {
      upc_.signal_batch(batch, n);
    }

   private:
    upc::UpcUnit& upc_;
  };

  unsigned id_;
  BootOptions boot_;
  upc::UpcUnit upc_;
  UpcSink sink_;
  std::vector<PulseHook> pulse_hooks_;
  std::unique_ptr<mem::MemoryHierarchy> mem_;
  std::array<std::unique_ptr<cpu::Core>, isa::kCoresPerNode> cores_;
};

}  // namespace bgp::sys
