#include "sys/mode.hpp"

#include <stdexcept>
#include <string>

namespace bgp::sys {

std::string_view to_string(OpMode m) noexcept {
  switch (m) {
    case OpMode::kSmp1: return "SMP/1";
    case OpMode::kSmp4: return "SMP/4";
    case OpMode::kDual: return "DUAL";
    case OpMode::kVnm: return "VNM";
  }
  return "?";
}

OpMode parse_mode(std::string_view name) {
  if (name == "smp1" || name == "smp") return OpMode::kSmp1;
  if (name == "smp4") return OpMode::kSmp4;
  if (name == "dual") return OpMode::kDual;
  if (name == "vnm") return OpMode::kVnm;
  throw std::invalid_argument("unknown operating mode: " + std::string(name));
}

}  // namespace bgp::sys
