// A partition: a set of nodes booted together in one operating mode, with
// the torus / collective / barrier networks wired to every node's UPC sink,
// and the rank → (node, core) placement for the selected mode.
#pragma once

#include <memory>
#include <vector>

#include "net/collective.hpp"
#include "net/torus.hpp"
#include "sys/mode.hpp"
#include "sys/node.hpp"

namespace bgp::sys {

/// Placement of an MPI rank.
struct Placement {
  unsigned node = 0;
  unsigned core = 0;  ///< first core of the owning process
  unsigned local_proc = 0;  ///< process index within the node
};

class Partition {
 public:
  Partition(unsigned num_nodes, OpMode mode, const BootOptions& boot = {});

  [[nodiscard]] unsigned num_nodes() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  [[nodiscard]] OpMode mode() const noexcept { return mode_; }
  [[nodiscard]] const BootOptions& boot() const noexcept { return boot_; }

  /// Total MPI ranks the partition hosts in its mode.
  [[nodiscard]] unsigned num_ranks() const noexcept {
    return num_nodes() * processes_per_node(mode_);
  }

  /// Block placement: rank r lives on node r / ppn, process r % ppn.
  [[nodiscard]] Placement placement(unsigned rank) const;

  [[nodiscard]] Node& node(unsigned i) { return *nodes_.at(i); }
  [[nodiscard]] const Node& node(unsigned i) const { return *nodes_.at(i); }

  [[nodiscard]] net::Torus& torus() noexcept { return *torus_; }
  [[nodiscard]] net::CollectiveNet& collective() noexcept { return *coll_; }
  [[nodiscard]] net::BarrierNet& barrier_net() noexcept { return *barrier_; }

 private:
  OpMode mode_;
  BootOptions boot_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<net::Torus> torus_;
  std::unique_ptr<net::CollectiveNet> coll_;
  std::unique_ptr<net::BarrierNet> barrier_;
};

}  // namespace bgp::sys
