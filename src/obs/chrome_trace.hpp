// Chrome trace-event JSON exporter: one pid per simulated node, one tid
// per core, complete ("X") events for spans and thread-scoped instant
// ("i") events for faults/deaths. The output loads directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Timestamps are simulated cycles
// converted to microseconds at the 850 MHz core clock; each event also
// carries the exact begin/end cycle counts in its args, which is what
// the golden/nesting tests check. Host times are deliberately left out
// so the JSON is bit-deterministic for a fixed seed.
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <string_view>

#include "obs/span_recorder.hpp"

namespace bgp::obs {

class FlightRecorder;

[[nodiscard]] std::string render_chrome_trace(std::span<const SpanRec> spans,
                                              std::span<const InstantRec>
                                                  instants,
                                              std::string_view app);

void write_chrome_trace_file(const std::filesystem::path& path,
                             std::span<const SpanRec> spans,
                             std::span<const InstantRec> instants,
                             std::string_view app);

/// Convenience: exports fr.all_spans() / fr.all_instants().
void write_chrome_trace_file(const std::filesystem::path& path,
                             const FlightRecorder& fr, std::string_view app);

}  // namespace bgp::obs
