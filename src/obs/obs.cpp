#include "obs/obs.hpp"

#include <algorithm>

namespace bgp::obs {

std::string_view to_string(CollOp op) noexcept {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kAllreduce: return "allreduce";
    case CollOp::kAlltoall: return "alltoall";
    case CollOp::kAllgather: return "allgather";
  }
  return "barrier";
}

void set_recorder(FlightRecorder* fr) noexcept { detail::g_recorder = fr; }

Histogram* collective_histogram(CollOp op) noexcept {
  FlightRecorder* fr = recorder();
  if (fr == nullptr) return nullptr;
  return fr->wk().coll_cycles[static_cast<unsigned>(op)];
}

FlightRecorder::FlightRecorder(unsigned nodes, unsigned cores_per_node,
                               ObsConfig config)
    : config_(config),
      nodes_(nodes),
      cores_per_node_(cores_per_node),
      epoch_(std::chrono::steady_clock::now()) {
  recorders_.reserve(std::size_t{nodes} * cores_per_node);
  for (unsigned n = 0; n < nodes; ++n) {
    for (unsigned c = 0; c < cores_per_node; ++c) {
      recorders_.emplace_back(n, c, config_.span_capacity, epoch_);
    }
  }

  const auto call = [&](const char* which) -> Counter* {
    return &metrics_.counter("bgpc_upc_calls_total",
                             "Interface-library calls by entry point",
                             {{"call", which}});
  };
  wk_.upc_initialize_calls = call("initialize");
  wk_.upc_start_calls = call("start");
  wk_.upc_stop_calls = call("stop");
  wk_.upc_finalize_calls = call("finalize");
  wk_.upc_overhead_cycles = &metrics_.counter(
      "bgpc_upc_overhead_cycles_total",
      "Simulated cycles charged for interface-library overhead");
  wk_.dump_writes = &metrics_.counter(
      "bgpc_dump_writes_total", "Counter dump files written (attempted)");
  wk_.dump_bytes = &metrics_.counter("bgpc_dump_bytes_total",
                                     "Serialized counter-dump bytes written");
  wk_.dump_retries = &metrics_.counter(
      "bgpc_dump_write_retries_total",
      "Extra dump-write attempts after injected I/O errors");
  wk_.dump_failures = &metrics_.counter(
      "bgpc_dump_write_failures_total",
      "Node dumps lost after the retry budget ran out");
  wk_.trace_seals = &metrics_.counter("bgpc_trace_seals_total",
                                      "Time-series trace files sealed");
  wk_.trace_samples = &metrics_.counter(
      "bgpc_trace_samples_total", "Counter samples taken by the tracer");
  wk_.trace_intervals = &metrics_.counter(
      "bgpc_trace_intervals_total", "Trace intervals pushed into ring buffers");
  wk_.trace_drops = &metrics_.counter(
      "bgpc_trace_dropped_total", "Trace intervals evicted before draining");
  wk_.rank_deaths = &metrics_.counter("bgpc_rank_deaths_total",
                                      "Ranks killed by injected node deaths");
  wk_.ranks_stranded = &metrics_.counter(
      "bgpc_ranks_stranded_total",
      "Ranks stranded by a peer's death (no FT recovery)");
  wk_.deaths_detected = &metrics_.counter(
      "bgpc_deaths_detected_total", "Node deaths detected by a survivor");
  const auto phase = [&](const char* which) -> Counter* {
    return &metrics_.counter("bgpc_ft_recovery_phases_total",
                             "Completed FT recovery phases by kind",
                             {{"phase", which}});
  };
  wk_.ft_revokes = phase("revoke");
  wk_.ft_agreements = phase("agree");
  wk_.ft_shrinks = phase("shrink");
  wk_.coll_ops = &metrics_.counter("bgpc_coll_operations_total",
                                   "Collective-network operations");
  wk_.coll_bytes = &metrics_.counter("bgpc_coll_bytes_total",
                                     "Bytes moved by collective operations");
  wk_.barrier_entries = &metrics_.counter("bgpc_barrier_entries_total",
                                          "Barrier-network entries");
  wk_.spans_recorded = &metrics_.gauge(
      "bgpc_obs_spans_recorded", "Spans completed across all rank recorders");
  wk_.spans_dropped = &metrics_.gauge(
      "bgpc_obs_spans_dropped", "Spans evicted from full rank rings");

  // Collective latency in simulated cycles; bounds sized for the modeled
  // tree/barrier network latencies (thousands of cycles at 850 MHz).
  const std::vector<double> bounds = {1e3, 2e3, 4e3,   8e3,   16e3,
                                      32e3, 64e3, 128e3, 256e3, 1e6};
  for (unsigned i = 0; i < kNumCollOps; ++i) {
    wk_.coll_cycles[i] = &metrics_.histogram(
        "bgpc_coll_latency_cycles",
        "Observed collective duration (entry to completion) by kind", bounds,
        {{"kind", std::string(to_string(static_cast<CollOp>(i)))}});
  }
}

void FlightRecorder::update_self_metrics() {
  u64 recorded = 0, dropped = 0;
  for (const SpanRecorder& r : recorders_) {
    recorded += r.spans_total();
    dropped += r.spans_dropped();
  }
  wk_.spans_recorded->set(static_cast<double>(recorded));
  wk_.spans_dropped->set(static_cast<double>(dropped));
}

namespace {

void order_spans(std::vector<SpanRec>& spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRec& a, const SpanRec& b) {
                     if (a.node != b.node) return a.node < b.node;
                     if (a.core != b.core) return a.core < b.core;
                     if (a.begin_cycles != b.begin_cycles) {
                       return a.begin_cycles < b.begin_cycles;
                     }
                     // An enclosing span begins with (or before) its
                     // children but completes after them; parents first.
                     return a.depth < b.depth;
                   });
}

void order_instants(std::vector<InstantRec>& instants) {
  std::stable_sort(instants.begin(), instants.end(),
                   [](const InstantRec& a, const InstantRec& b) {
                     if (a.node != b.node) return a.node < b.node;
                     if (a.core != b.core) return a.core < b.core;
                     return a.cycles < b.cycles;
                   });
}

}  // namespace

std::vector<SpanRec> FlightRecorder::all_spans() const {
  std::vector<SpanRec> out;
  for (const SpanRecorder& r : recorders_) {
    out.insert(out.end(), r.spans().begin(), r.spans().end());
  }
  order_spans(out);
  return out;
}

std::vector<InstantRec> FlightRecorder::all_instants() const {
  std::vector<InstantRec> out;
  for (const SpanRecorder& r : recorders_) {
    out.insert(out.end(), r.instants().begin(), r.instants().end());
  }
  order_instants(out);
  return out;
}

std::vector<SpanRec> FlightRecorder::node_spans(unsigned node) const {
  std::vector<SpanRec> out;
  for (unsigned c = 0; c < cores_per_node_; ++c) {
    const auto& spans = rank(node, c).spans();
    out.insert(out.end(), spans.begin(), spans.end());
  }
  order_spans(out);
  return out;
}

std::vector<InstantRec> FlightRecorder::node_instants(unsigned node) const {
  std::vector<InstantRec> out;
  for (unsigned c = 0; c < cores_per_node_; ++c) {
    const auto& instants = rank(node, c).instants();
    out.insert(out.end(), instants.begin(), instants.end());
  }
  order_instants(out);
  return out;
}

u64 FlightRecorder::spans_dropped() const noexcept {
  u64 dropped = 0;
  for (const SpanRecorder& r : recorders_) dropped += r.spans_dropped();
  return dropped;
}

}  // namespace bgp::obs
