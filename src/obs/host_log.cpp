#include "obs/host_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <system_error>

#include "common/strfmt.hpp"

namespace bgp::obs {

std::string_view to_string(EventLevel level) noexcept {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "info";
}

std::optional<EventLevel> parse_event_level(std::string_view text) noexcept {
  if (text == "debug") return EventLevel::kDebug;
  if (text == "info") return EventLevel::kInfo;
  if (text == "warn") return EventLevel::kWarn;
  if (text == "error") return EventLevel::kError;
  return std::nullopt;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

HostEvent& HostEvent::str(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key), '"' + json_escape(value) + '"');
  return *this;
}

HostEvent& HostEvent::num(std::string_view key, i64 value) {
  fields_.emplace_back(std::string(key),
                       strfmt("%lld", static_cast<long long>(value)));
  return *this;
}

HostEvent& HostEvent::num(std::string_view key, u64 value) {
  fields_.emplace_back(std::string(key),
                       strfmt("%llu", static_cast<unsigned long long>(value)));
  return *this;
}

HostEvent& HostEvent::num(std::string_view key, double value) {
  fields_.emplace_back(std::string(key), strfmt("%.9g", value));
  return *this;
}

HostEvent& HostEvent::boolean(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

std::string HostEvent::render(EventLevel level, i64 ts_ns) const {
  std::string out = strfmt("{\"ts_ns\":%lld,\"level\":\"%s\",\"event\":\"%s\"",
                           static_cast<long long>(ts_ns),
                           std::string(to_string(level)).c_str(),
                           json_escape(name_).c_str());
  for (const auto& [key, value] : fields_) {
    out += ",\"";
    out += json_escape(key);
    out += "\":";
    out += value;
  }
  out += '}';
  return out;
}

HostEventLog::HostEventLog(HostLogConfig cfg) : cfg_(std::move(cfg)) {
  std::lock_guard lk(mu_);
  open_file_locked();
}

HostEventLog::~HostEventLog() {
  std::lock_guard lk(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool HostEventLog::enabled(EventLevel level) const noexcept {
  if (!cfg_.path.empty() && level >= cfg_.file_level) return true;
  return cfg_.stderr_level.has_value() && level >= *cfg_.stderr_level;
}

void HostEventLog::open_file_locked() {
  if (cfg_.path.empty()) return;
  fd_ = ::open(cfg_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
               0644);
  if (fd_ >= 0) {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    file_bytes_ = end > 0 ? static_cast<u64>(end) : 0;
  }
}

void HostEventLog::rotate_locked() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  std::error_code ec;
  const std::string base = cfg_.path.string();
  std::filesystem::remove(base + "." + std::to_string(cfg_.rotate_keep), ec);
  for (unsigned i = cfg_.rotate_keep; i > 1; --i) {
    std::filesystem::rename(base + "." + std::to_string(i - 1),
                            base + "." + std::to_string(i), ec);
  }
  if (cfg_.rotate_keep > 0) {
    std::filesystem::rename(base, base + ".1", ec);
  } else {
    std::filesystem::remove(base, ec);
  }
  file_bytes_ = 0;
  ++rotations_;
  open_file_locked();
}

void HostEventLog::write_line(EventLevel level, std::string_view line) {
  const bool to_file =
      !cfg_.path.empty() && level >= cfg_.file_level;
  const bool to_stderr =
      cfg_.stderr_level.has_value() && level >= *cfg_.stderr_level;
  if (!to_file && !to_stderr) return;

  std::string framed(line);
  framed += '\n';

  std::lock_guard lk(mu_);
  if (to_file) {
    if (fd_ < 0) open_file_locked();
    if (fd_ >= 0 && cfg_.rotate_bytes > 0 && file_bytes_ > 0 &&
        file_bytes_ + framed.size() > cfg_.rotate_bytes) {
      rotate_locked();
    }
    if (fd_ >= 0) {
      // One write(2) per line on an O_APPEND fd: a crash between lines
      // loses nothing, a crash mid-write leaves at most one torn tail
      // line, which any JSONL reader skips.
      ssize_t n;
      do {
        n = ::write(fd_, framed.data(), framed.size());
      } while (n < 0 && errno == EINTR);
      if (n > 0) file_bytes_ += static_cast<u64>(n);
    }
  }
  if (to_stderr) {
    std::fwrite(framed.data(), 1, framed.size(), stderr);
  }
  ++lines_written_;
}

u64 HostEventLog::lines_written() const noexcept {
  std::lock_guard lk(mu_);
  return lines_written_;
}

u64 HostEventLog::rotations() const noexcept {
  std::lock_guard lk(mu_);
  return rotations_;
}

}  // namespace bgp::obs
