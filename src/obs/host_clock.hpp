// Host-timeline clocks for daemon self-characterization. Everything in
// this header measures *wall/monotonic host time* — the real nanoseconds
// a request, journal append or scrape took — and deliberately has no
// connection to the simulated cycle clock. Host instrumentation bills
// zero simulated cycles, so enabling it cannot perturb the deterministic
// timeline (tab_overhead re-asserts the 48-cycle publish row with a host
// histogram attached).
#pragma once

#include <chrono>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace bgp::obs {

/// Monotonic host clock, for latencies. Never goes backwards; not
/// related to the epoch.
[[nodiscard]] inline i64 host_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall clock (CLOCK_REALTIME), for event timestamps that must be
/// correlatable across processes and restarts.
[[nodiscard]] inline i64 host_wall_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

inline constexpr double kNsPerSecond = 1e9;

/// The shared bucket layout for every host-latency histogram family:
/// exponential from 1 µs to ~2.6 s (factor 2), in seconds. One layout
/// for all families keeps p50/p99 comparisons across families honest.
[[nodiscard]] inline std::vector<double> host_latency_bounds() {
  std::vector<double> b;
  for (double v = 1e-6; v < 3.0; v *= 2.0) b.push_back(v);
  return b;
}

/// Manual start/stop timer observing elapsed host seconds into a
/// Histogram. The histogram pointer may be null (observation dropped),
/// so call sites don't need their own guards.
class HostTimer {
 public:
  HostTimer() noexcept : start_ns_(host_now_ns()) {}

  /// Seconds since construction (or the last restart()).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return static_cast<double>(host_now_ns() - start_ns_) / kNsPerSecond;
  }
  /// Observe the elapsed time into `h` (no-op when null) and return it.
  double observe(Histogram* h) noexcept {
    const double s = elapsed_seconds();
    if (h != nullptr) h->observe(s);
    return s;
  }
  /// Re-arm: subsequent elapsed_seconds() measure from now. Used to time
  /// consecutive phases (parse -> dispatch -> respond) with one timer.
  void restart() noexcept { start_ns_ = host_now_ns(); }

 private:
  i64 start_ns_;
};

/// RAII wrapper: observes into the histogram on scope exit.
class ScopedHostTimer {
 public:
  explicit ScopedHostTimer(Histogram* h) noexcept : h_(h) {}
  ~ScopedHostTimer() { timer_.observe(h_); }
  ScopedHostTimer(const ScopedHostTimer&) = delete;
  ScopedHostTimer& operator=(const ScopedHostTimer&) = delete;

 private:
  Histogram* h_;
  HostTimer timer_;
};

}  // namespace bgp::obs
