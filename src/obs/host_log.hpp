// Structured host event logging: one JSON object per line (JSONL),
// leveled, size-rotated, crash-safe. The daemon uses this to record
// session/request lifecycle on the *host* timeline so that any session
// can be reconstructed from one grep over events.jsonl — the
// ScALPEL/LIKWID "production-resident monitoring" standard applied to
// bgpcd itself.
//
// Crash safety is by construction, not by flushing discipline: the file
// is opened O_APPEND and every event is a single write(2) of one
// complete line, so a SIGKILL can lose at most the events never written,
// never corrupt earlier ones. Rotation renames the live file aside
// (events.jsonl -> events.jsonl.1 -> .2 ...) between lines.
#pragma once

#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bgp::obs {

enum class EventLevel : u8 { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] std::string_view to_string(EventLevel level) noexcept;
/// "debug" / "info" / "warn" / "error" (case-sensitive); nullopt otherwise.
[[nodiscard]] std::optional<EventLevel> parse_event_level(
    std::string_view text) noexcept;

/// JSON string escaping (RFC 8259 minimal: quote, backslash, control
/// chars as \uXXXX plus the short forms).
[[nodiscard]] std::string json_escape(std::string_view s);

/// One structured event under construction. Field order is preserved in
/// the rendered line (ts_ns, level, event first, then fields in call
/// order), so the same event always greps the same way.
class HostEvent {
 public:
  explicit HostEvent(std::string_view name) : name_(name) {}

  HostEvent& str(std::string_view key, std::string_view value);
  HostEvent& num(std::string_view key, i64 value);
  HostEvent& num(std::string_view key, u64 value);
  HostEvent& num(std::string_view key, double value);
  HostEvent& boolean(std::string_view key, bool value);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The complete JSONL line, without the trailing newline.
  [[nodiscard]] std::string render(EventLevel level, i64 ts_ns) const;

 private:
  std::string name_;
  /// key -> pre-rendered JSON value (already quoted/escaped when string).
  std::vector<std::pair<std::string, std::string>> fields_;
};

struct HostLogConfig {
  /// Empty path disables the file sink (stderr mirror may still be on).
  std::filesystem::path path;
  EventLevel file_level = EventLevel::kDebug;
  /// Events at or above this level are mirrored to stderr; nullopt
  /// silences the mirror entirely.
  std::optional<EventLevel> stderr_level;
  /// Rotate when the live file would exceed this many bytes.
  u64 rotate_bytes = 8 * MiB;
  /// Rotated generations kept (path.1 .. path.N); older ones are deleted.
  unsigned rotate_keep = 2;
};

class HostEventLog {
 public:
  HostEventLog() = default;
  explicit HostEventLog(HostLogConfig cfg);
  ~HostEventLog();
  HostEventLog(const HostEventLog&) = delete;
  HostEventLog& operator=(const HostEventLog&) = delete;

  /// True when an event at `level` would reach at least one sink.
  [[nodiscard]] bool enabled(EventLevel level) const noexcept;

  /// Write one already-rendered line (no trailing newline) to the
  /// enabled sinks. Thread-safe; silently drops on I/O failure (logging
  /// must never take the daemon down).
  void write_line(EventLevel level, std::string_view line);

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return cfg_.path;
  }
  [[nodiscard]] u64 lines_written() const noexcept;
  [[nodiscard]] u64 rotations() const noexcept;

 private:
  void open_file_locked();
  void rotate_locked();

  HostLogConfig cfg_;
  mutable std::mutex mu_;
  int fd_ = -1;
  u64 file_bytes_ = 0;
  u64 lines_written_ = 0;
  u64 rotations_ = 0;
};

}  // namespace bgp::obs
