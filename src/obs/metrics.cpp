#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::obs {

std::string_view to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  num_counts_ = bounds_.size() + 1;
  counts_ = std::make_unique<std::atomic<u64>[]>(num_counts_);
  for (std::size_t i = 0; i < num_counts_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

bool name_ok(std::string_view name, bool allow_colon) noexcept {
  if (name.empty()) return false;
  const auto head = [&](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           (allow_colon && c == ':');
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

bool valid_metric_name(std::string_view name) noexcept {
  return name_ok(name, /*allow_colon=*/true);
}

bool valid_label_name(std::string_view name) noexcept {
  return name_ok(name, /*allow_colon=*/false);
}

MetricsRegistry::Family& MetricsRegistry::family(std::string_view name,
                                                 std::string_view help,
                                                 MetricType type) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument(
        strfmt("invalid metric name '%s'", std::string(name).c_str()));
  }
  for (Family& f : families_) {
    if (f.name == name) {
      if (f.type != type) {
        throw std::logic_error(strfmt(
            "metric '%s' already registered as %s", f.name.c_str(),
            std::string(to_string(f.type)).c_str()));
      }
      return f;
    }
  }
  Family& f = families_.emplace_back();
  f.name = std::string(name);
  f.help = std::string(help);
  f.type = type;
  return f;
}

MetricsRegistry::Instance& MetricsRegistry::instance(Family& fam,
                                                     LabelSet&& labels) {
  for (const auto& [k, v] : labels) {
    if (!valid_label_name(k)) {
      throw std::invalid_argument(
          strfmt("invalid label name '%s' on metric '%s'", k.c_str(),
                 fam.name.c_str()));
    }
  }
  for (Instance& inst : fam.instances) {
    if (inst.labels == labels) return inst;
  }
  Instance& inst = fam.instances.emplace_back();
  inst.labels = std::move(labels);
  return inst;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  LabelSet labels) {
  const std::lock_guard<std::mutex> lk(*mu_);
  return instance(family(name, help, MetricType::kCounter), std::move(labels))
      .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              LabelSet labels) {
  const std::lock_guard<std::mutex> lk(*mu_);
  return instance(family(name, help, MetricType::kGauge), std::move(labels))
      .gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> bounds,
                                      LabelSet labels) {
  const std::lock_guard<std::mutex> lk(*mu_);
  Instance& inst =
      instance(family(name, help, MetricType::kHistogram), std::move(labels));
  if (inst.histogram == nullptr) {
    inst.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *inst.histogram;
}

std::size_t MetricsRegistry::num_series() const {
  const std::lock_guard<std::mutex> lk(*mu_);
  std::size_t n = 0;
  for (const Family& f : families_) n += f.instances.size();
  return n;
}

}  // namespace bgp::obs
