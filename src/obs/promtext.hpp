// Prometheus text exposition (version 0.0.4) for the MetricsRegistry,
// plus a small parser used by round-trip tests and bgpc_obs.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace bgp::obs {

/// Render the registry: # HELP / # TYPE headers, one sample line per
/// series, histograms expanded into cumulative _bucket/_sum/_count.
[[nodiscard]] std::string render_prometheus(const MetricsRegistry& reg);

/// Write render_prometheus(reg) to `path` (throws on I/O error).
void write_prometheus_file(const std::filesystem::path& path,
                           const MetricsRegistry& reg);

/// The canonical key a sample of `name` + `labels` renders under,
/// e.g. `bgpc_upc_calls_total{call="start"}`.
[[nodiscard]] std::string prometheus_key(std::string_view name,
                                         const LabelSet& labels);

/// Parse exposition text back into (sample key -> value). Throws
/// std::runtime_error on a malformed sample line.
[[nodiscard]] std::map<std::string, double> parse_prometheus(
    std::string_view text);

}  // namespace bgp::obs
