// Prometheus text exposition (version 0.0.4) for the MetricsRegistry,
// plus a small parser used by round-trip tests and bgpc_obs.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace bgp::obs {

/// Render the registry: # HELP / # TYPE headers, one sample line per
/// series, histograms expanded into cumulative _bucket/_sum/_count.
[[nodiscard]] std::string render_prometheus(const MetricsRegistry& reg);

/// Write render_prometheus(reg) to `path` (throws on I/O error).
void write_prometheus_file(const std::filesystem::path& path,
                           const MetricsRegistry& reg);

/// The canonical key a sample of `name` + `labels` renders under,
/// e.g. `bgpc_upc_calls_total{call="start"}`.
[[nodiscard]] std::string prometheus_key(std::string_view name,
                                         const LabelSet& labels);

/// Parse exposition text back into (sample key -> value). Throws
/// std::runtime_error on a malformed sample line.
[[nodiscard]] std::map<std::string, double> parse_prometheus(
    std::string_view text);

/// One fully decoded sample line: metric name, decoded label set (escape
/// sequences resolved — the exact inverse of the renderer), value.
struct PromSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};

/// Decode a single (non-comment, non-empty) sample line. Throws
/// std::runtime_error on malformed input.
[[nodiscard]] PromSample parse_prometheus_sample(std::string_view line);

/// A histogram family instance reassembled from its _bucket/_sum/_count
/// samples. `buckets` maps the upper bound (`+Inf` as infinity) to the
/// *cumulative* count at that bound, exactly as exposed.
struct ParsedHistogram {
  std::map<double, u64> buckets;
  double sum = 0.0;
  u64 count = 0;
};

/// Reassemble every histogram in the exposition, keyed by
/// `name{labels-without-le}` (e.g. `bgpcd_http_request_seconds{path="/metrics"}`).
/// Non-histogram samples are ignored.
[[nodiscard]] std::map<std::string, ParsedHistogram>
parse_prometheus_histograms(std::string_view text);

/// Prometheus-style histogram_quantile: rank `q * count` located in the
/// cumulative buckets, linearly interpolated inside the containing
/// bucket. Returns NaN when the histogram is empty and the highest
/// finite bound when the rank lands in the +Inf bucket.
[[nodiscard]] double histogram_quantile(const ParsedHistogram& h, double q);

}  // namespace bgp::obs
