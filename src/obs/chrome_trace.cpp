#include "obs/chrome_trace.hpp"

#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/strfmt.hpp"
#include "common/types.hpp"
#include "obs/obs.hpp"

namespace bgp::obs {

namespace {

constexpr double kCyclesPerUs = kCoreClockHz / 1e6;  // 850

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string us(cycles_t cycles) {
  return strfmt("%.3f", static_cast<double>(cycles) / kCyclesPerUs);
}

}  // namespace

std::string render_chrome_trace(std::span<const SpanRec> spans,
                                std::span<const InstantRec> instants,
                                std::string_view app) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"app\":\"";
  out += json_escape(app);
  out += "\"},\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](std::string event) {
    if (!first) out += ',';
    first = false;
    out += "\n";
    out += event;
  };

  // Name the processes/threads Perfetto shows: pid = node, tid = core.
  std::set<unsigned> nodes;
  std::set<std::pair<unsigned, unsigned>> cores;
  for (const SpanRec& s : spans) {
    nodes.insert(s.node);
    cores.insert({s.node, s.core});
  }
  for (const InstantRec& i : instants) {
    nodes.insert(i.node);
    cores.insert({i.node, i.core});
  }
  for (const unsigned n : nodes) {
    emit(strfmt("{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                "\"args\":{\"name\":\"node%04u\"}}",
                n, n));
  }
  for (const auto& [n, c] : cores) {
    emit(strfmt("{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                "\"name\":\"thread_name\",\"args\":{\"name\":\"core%u\"}}",
                n, c, c));
  }

  for (const SpanRec& s : spans) {
    const cycles_t dur =
        s.end_cycles > s.begin_cycles ? s.end_cycles - s.begin_cycles : 0;
    emit(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"pid\":%u,\"tid\":%u,\"ts\":%s,\"dur\":%s,"
                "\"args\":{\"bc\":%llu,\"ec\":%llu,\"depth\":%u}}",
                json_escape(s.name).c_str(),
                std::string(to_string(s.cat)).c_str(), s.node, s.core,
                us(s.begin_cycles).c_str(), us(dur).c_str(),
                static_cast<unsigned long long>(s.begin_cycles),
                static_cast<unsigned long long>(s.end_cycles), s.depth));
  }
  for (const InstantRec& i : instants) {
    emit(strfmt("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                "\"pid\":%u,\"tid\":%u,\"ts\":%s,\"args\":{\"c\":%llu}}",
                json_escape(i.name).c_str(),
                std::string(to_string(i.cat)).c_str(), i.node, i.core,
                us(i.cycles).c_str(),
                static_cast<unsigned long long>(i.cycles)));
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace_file(const std::filesystem::path& path,
                             std::span<const SpanRec> spans,
                             std::span<const InstantRec> instants,
                             std::string_view app) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << render_chrome_trace(spans, instants, app);
  out.flush();
  if (!out) {
    throw std::runtime_error(
        strfmt("failed to write %s", path.string().c_str()));
  }
}

void write_chrome_trace_file(const std::filesystem::path& path,
                             const FlightRecorder& fr, std::string_view app) {
  const auto spans = fr.all_spans();
  const auto instants = fr.all_instants();
  write_chrome_trace_file(path, spans, instants, app);
}

}  // namespace bgp::obs
