// Crash-surviving host flight recorder: a fixed-size ring of the most
// recent host events, kept in an mmap(MAP_SHARED) file so the records
// survive SIGKILL exactly the way BGPSNAP snapshots do — the kernel owns
// the pages, process death changes nothing. Each slot carries a
// monotonically increasing sequence number and a CRC over its text, so a
// reader (live /debug/events, the SIGSEGV dump handler, or restart
// recovery salvaging after a crash) can reconstruct the event tail in
// order while skipping at most the one record that was mid-write.
//
// Layout (little-endian, u64-aligned):
//   Header  magic "BGPFRNG\0", version, slot_bytes, num_slots,
//           clean flag (1 after a clean close), head sequence
//   Slot[]  { u64 seq (0 = empty, else claim+1), u32 len, u32 crc32,
//             char text[slot_bytes - 16] }
#pragma once

#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace bgp::obs {

inline constexpr char kFlightMagic[8] = {'B', 'G', 'P', 'F',
                                         'R', 'N', 'G', '\0'};
inline constexpr u32 kFlightVersion = 1;

struct FlightRingConfig {
  std::filesystem::path path;
  u32 slot_bytes = 512;  ///< per-record capacity including the 16B frame
  u32 num_slots = 512;
};

class FlightRing {
 public:
  /// Open-or-create. If `path` holds a ring that was not closed cleanly
  /// (a crash), its CRC-valid records are collected into salvaged() in
  /// sequence order before the ring is reset for this process. A file
  /// with a foreign magic/geometry is discarded and recreated. Throws
  /// std::system_error on I/O failure.
  explicit FlightRing(FlightRingConfig cfg);
  ~FlightRing();
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Append one event line (truncated to the slot text capacity).
  /// Thread-safe; wait-free for readers via per-slot seq invalidation.
  void append(std::string_view line) noexcept;

  /// Consistent copy of the current ring contents in append order
  /// (oldest surviving record first). Serializes against writers.
  [[nodiscard]] std::vector<std::string> records() const;

  /// Records recovered from a dirty ring found at open.
  [[nodiscard]] const std::vector<std::string>& salvaged() const noexcept {
    return salvaged_;
  }
  /// True when the file at open() carried a dirty ring (crash evidence).
  [[nodiscard]] bool recovered_dirty() const noexcept {
    return recovered_dirty_;
  }

  /// Async-signal-safe dump of the ring to `fd`, one line per record in
  /// sequence order. Only write(2) — callable from SIGSEGV/SIGABRT.
  void dump_signal_safe(int fd) const noexcept;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return cfg_.path;
  }
  [[nodiscard]] u32 num_slots() const noexcept { return cfg_.num_slots; }
  [[nodiscard]] u64 head() const noexcept;

 private:
  [[nodiscard]] std::byte* slot_base(u64 index) const noexcept;
  /// Validate + copy out one slot; empty string when invalid/empty.
  [[nodiscard]] bool read_slot(u64 index, u64& seq, std::string& text) const;

  FlightRingConfig cfg_;
  std::byte* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  mutable std::mutex mu_;  ///< serializes writers (single process)
  std::vector<std::string> salvaged_;
  bool recovered_dirty_ = false;
};

/// Salvage a dirty ring file without opening it for writing: used by
/// restart recovery to turn a crashed daemon's ring into flight.jsonl.
/// Returns the CRC-valid records in sequence order; empty when the file
/// is missing, foreign, or was closed cleanly (no crash to explain).
[[nodiscard]] std::vector<std::string> salvage_flight_ring(
    const std::filesystem::path& path);

}  // namespace bgp::obs
