// Per-rank span recorder: a bounded ring of completed begin/end spans
// (evict-oldest with drop accounting, same policy as trace::TraceBuffer)
// plus instant events, each stamped with both the simulated-cycle clock
// of the owning core and a host monotonic-nanosecond clock shared by the
// whole FlightRecorder. One recorder per (node, core); a recorder is only
// ever mutated from the rank thread that owns that core while it holds
// the scheduler token, so no synchronization is needed.
#pragma once

#include <chrono>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace bgp::obs {

/// Span taxonomy (docs/observability.md lists the site behind each).
enum class SpanCat : u8 {
  kUpc,         ///< the four interface-library calls
  kCollective,  ///< barrier/bcast/allreduce/alltoall/allgather
  kFt,          ///< revoke/agree/shrink recovery phases + death detection
  kDump,        ///< counter dump file writes
  kTrace,       ///< time-series trace sealing
  kRegion,      ///< benchmark regions (kernel bodies)
  kFault,       ///< injected node deaths / stranded ranks (instants)
};

[[nodiscard]] std::string_view to_string(SpanCat cat) noexcept;
[[nodiscard]] bool parse_span_cat(std::string_view text, SpanCat& out) noexcept;

/// One completed begin/end pair.
struct SpanRec {
  std::string name;
  SpanCat cat = SpanCat::kRegion;
  u32 node = 0;
  u32 core = 0;
  u32 depth = 0;  ///< nesting depth at begin (0 = top level)
  cycles_t begin_cycles = 0;
  cycles_t end_cycles = 0;
  u64 begin_host_ns = 0;
  u64 end_host_ns = 0;
};

/// A point event (fault injected, death detected, ...).
struct InstantRec {
  std::string name;
  SpanCat cat = SpanCat::kFault;
  u32 node = 0;
  u32 core = 0;
  cycles_t cycles = 0;
  u64 host_ns = 0;
};

class SpanRecorder {
 public:
  SpanRecorder(u32 node, u32 core, std::size_t capacity,
               std::chrono::steady_clock::time_point epoch);

  /// Open a span at simulated time `now_cycles`.
  void begin(std::string_view name, SpanCat cat, cycles_t now_cycles);
  /// Close the innermost open span; returns its simulated duration
  /// (0 when no span is open — counted in unmatched_ends()).
  cycles_t end(cycles_t now_cycles);
  void instant(std::string_view name, SpanCat cat, cycles_t now_cycles);

  [[nodiscard]] const std::deque<SpanRec>& spans() const noexcept {
    return done_;
  }
  [[nodiscard]] const std::deque<InstantRec>& instants() const noexcept {
    return instants_;
  }
  [[nodiscard]] u32 node() const noexcept { return node_; }
  [[nodiscard]] u32 core() const noexcept { return core_; }
  [[nodiscard]] std::size_t open_depth() const noexcept {
    return open_.size();
  }
  /// Lifetime totals (the ring only retains the newest `capacity`).
  [[nodiscard]] u64 spans_total() const noexcept { return spans_total_; }
  [[nodiscard]] u64 spans_dropped() const noexcept { return spans_dropped_; }
  [[nodiscard]] u64 instants_total() const noexcept { return instants_total_; }
  [[nodiscard]] u64 instants_dropped() const noexcept {
    return instants_dropped_;
  }
  [[nodiscard]] u64 unmatched_ends() const noexcept { return unmatched_ends_; }

 private:
  [[nodiscard]] u64 host_ns() const;

  u32 node_;
  u32 core_;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRec> open_;  ///< stack of in-flight spans
  std::deque<SpanRec> done_;
  std::deque<InstantRec> instants_;
  u64 spans_total_ = 0;
  u64 spans_dropped_ = 0;
  u64 instants_total_ = 0;
  u64 instants_dropped_ = 0;
  u64 unmatched_ends_ = 0;
};

}  // namespace bgp::obs
