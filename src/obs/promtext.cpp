#include "obs/promtext.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::obs {

namespace {

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_value(double v) { return strfmt("%.17g", v); }

std::string label_block(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

LabelSet with_le(const LabelSet& labels, const std::string& le) {
  LabelSet out = labels;
  out.emplace_back("le", le);
  return out;
}

}  // namespace

std::string prometheus_key(std::string_view name, const LabelSet& labels) {
  return std::string(name) + label_block(labels);
}

std::string render_prometheus(const MetricsRegistry& reg) {
  std::string out;
  // Renders may race registration (the daemon registers per-session series
  // while /metrics scrapes run); hold the registration lock across the
  // iteration.
  const auto lock = reg.families_lock();
  for (const auto& fam : reg.families()) {
    out += "# HELP " + fam.name + " " + escape_help(fam.help) + "\n";
    out += "# TYPE " + fam.name + " " +
           std::string(to_string(fam.type)) + "\n";
    for (const auto& inst : fam.instances) {
      switch (fam.type) {
        case MetricType::kCounter:
          out += prometheus_key(fam.name, inst.labels) + " " +
                 strfmt("%llu",
                        static_cast<unsigned long long>(inst.counter.value())) +
                 "\n";
          break;
        case MetricType::kGauge:
          out += prometheus_key(fam.name, inst.labels) + " " +
                 format_value(inst.gauge.value()) + "\n";
          break;
        case MetricType::kHistogram: {
          if (inst.histogram == nullptr) break;
          const Histogram& h = *inst.histogram;
          u64 cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket(i);
            out += prometheus_key(fam.name + "_bucket",
                                  with_le(inst.labels,
                                          format_value(h.bounds()[i]))) +
                   " " + strfmt("%llu",
                                static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          // Read the count once and clamp to the finite cumulative sum:
          // relaxed bucket/count updates racing this walk could otherwise
          // render a +Inf bucket below the last finite bucket (the bucket
          // increment lands before the count increment in observe()).
          // Quiescent registries are unaffected: count >= cumulative.
          const u64 total = std::max(cumulative, h.count());
          out += prometheus_key(fam.name + "_bucket",
                                with_le(inst.labels, "+Inf")) +
                 " " + strfmt("%llu",
                              static_cast<unsigned long long>(total)) +
                 "\n";
          out += prometheus_key(fam.name + "_sum", inst.labels) + " " +
                 format_value(h.sum()) + "\n";
          out += prometheus_key(fam.name + "_count", inst.labels) + " " +
                 strfmt("%llu",
                        static_cast<unsigned long long>(total)) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

void write_prometheus_file(const std::filesystem::path& path,
                           const MetricsRegistry& reg) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << render_prometheus(reg);
  out.flush();
  if (!out) {
    throw std::runtime_error(
        strfmt("failed to write %s", path.string().c_str()));
  }
}

PromSample parse_prometheus_sample(std::string_view line) {
  const auto malformed = [&line]() -> std::runtime_error {
    return std::runtime_error("malformed sample line: " + std::string(line));
  };
  PromSample out;
  std::size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  if (pos == 0 || pos == line.size()) throw malformed();
  out.name = std::string(line.substr(0, pos));

  if (line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      if (line[pos] == ',') {
        ++pos;
        continue;
      }
      const std::size_t eq = line.find('=', pos);
      if (eq == std::string_view::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        throw malformed();
      }
      std::string key(line.substr(pos, eq - pos));
      std::string value;
      pos = eq + 2;
      // Unescape the quoted label value (\\, \", \n are the renderer's
      // full escape alphabet).
      for (;;) {
        if (pos >= line.size()) throw malformed();
        const char c = line[pos];
        if (c == '"') {
          ++pos;
          break;
        }
        if (c == '\\') {
          if (pos + 1 >= line.size()) throw malformed();
          const char esc = line[pos + 1];
          if (esc == 'n') {
            value += '\n';
          } else {
            value += esc;
          }
          pos += 2;
        } else {
          value += c;
          ++pos;
        }
      }
      out.labels.emplace_back(std::move(key), std::move(value));
    }
    if (pos >= line.size() || line[pos] != '}') throw malformed();
    ++pos;
  }

  if (pos >= line.size() || line[pos] != ' ') throw malformed();
  const std::string value_text(line.substr(pos + 1));
  char* end = nullptr;
  out.value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str() || *end != '\0') {
    if (value_text == "+Inf") {
      out.value = std::numeric_limits<double>::infinity();
    } else {
      throw std::runtime_error("malformed sample value: " +
                               std::string(line));
    }
  }
  return out;
}

std::map<std::string, ParsedHistogram> parse_prometheus_histograms(
    std::string_view text) {
  std::map<std::string, ParsedHistogram> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    const PromSample s = parse_prometheus_sample(line);

    const auto strip_suffix = [&s](std::string_view suffix)
        -> std::optional<std::string> {
      if (s.name.size() <= suffix.size() ||
          s.name.compare(s.name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
        return std::nullopt;
      }
      return s.name.substr(0, s.name.size() - suffix.size());
    };

    if (const auto base = strip_suffix("_bucket")) {
      double le = 0.0;
      bool have_le = false;
      LabelSet rest;
      for (const auto& [k, v] : s.labels) {
        if (k == "le") {
          le = v == "+Inf" ? std::numeric_limits<double>::infinity()
                           : std::strtod(v.c_str(), nullptr);
          have_le = true;
        } else {
          rest.emplace_back(k, v);
        }
      }
      if (!have_le) continue;  // a counter that merely ends in _bucket
      out[prometheus_key(*base, rest)].buckets[le] =
          static_cast<u64>(s.value);
    } else if (const auto base_sum = strip_suffix("_sum")) {
      auto it = out.find(prometheus_key(*base_sum, s.labels));
      if (it != out.end()) it->second.sum = s.value;
    } else if (const auto base_count = strip_suffix("_count")) {
      auto it = out.find(prometheus_key(*base_count, s.labels));
      if (it != out.end()) it->second.count = static_cast<u64>(s.value);
    }
  }
  return out;
}

double histogram_quantile(const ParsedHistogram& h, double q) {
  if (h.count == 0 || h.buckets.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(h.count);
  double prev_bound = 0.0;
  u64 prev_cum = 0;
  double highest_finite = 0.0;
  for (const auto& [bound, cum] : h.buckets) {
    if (std::isfinite(bound)) highest_finite = bound;
    if (static_cast<double>(cum) >= rank && cum > prev_cum) {
      if (!std::isfinite(bound)) return highest_finite;
      const double in_bucket = static_cast<double>(cum - prev_cum);
      const double frac = (rank - static_cast<double>(prev_cum)) / in_bucket;
      return prev_bound + (bound - prev_bound) * frac;
    }
    prev_bound = std::isfinite(bound) ? bound : prev_bound;
    prev_cum = cum;
  }
  return highest_finite;
}

std::map<std::string, double> parse_prometheus(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    // The value is the text after the last space outside the label block
    // (label values are quoted, so the last '}' splits reliably; bare
    // samples split at the last space).
    const std::size_t close = line.rfind('}');
    const std::size_t split = line.find(' ', close == std::string_view::npos
                                                  ? 0
                                                  : close);
    if (split == std::string_view::npos || split == 0) {
      throw std::runtime_error("malformed sample line: " + std::string(line));
    }
    const std::string key(line.substr(0, split));
    const std::string value_text(line.substr(split + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      throw std::runtime_error("malformed sample value: " + std::string(line));
    }
    out[key] = value;
  }
  return out;
}

}  // namespace bgp::obs
