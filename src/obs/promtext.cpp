#include "obs/promtext.hpp"

#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::obs {

namespace {

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string format_value(double v) { return strfmt("%.17g", v); }

std::string label_block(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  out += '}';
  return out;
}

LabelSet with_le(const LabelSet& labels, const std::string& le) {
  LabelSet out = labels;
  out.emplace_back("le", le);
  return out;
}

}  // namespace

std::string prometheus_key(std::string_view name, const LabelSet& labels) {
  return std::string(name) + label_block(labels);
}

std::string render_prometheus(const MetricsRegistry& reg) {
  std::string out;
  // Renders may race registration (the daemon registers per-session series
  // while /metrics scrapes run); hold the registration lock across the
  // iteration.
  const auto lock = reg.families_lock();
  for (const auto& fam : reg.families()) {
    out += "# HELP " + fam.name + " " + escape_help(fam.help) + "\n";
    out += "# TYPE " + fam.name + " " +
           std::string(to_string(fam.type)) + "\n";
    for (const auto& inst : fam.instances) {
      switch (fam.type) {
        case MetricType::kCounter:
          out += prometheus_key(fam.name, inst.labels) + " " +
                 strfmt("%llu",
                        static_cast<unsigned long long>(inst.counter.value())) +
                 "\n";
          break;
        case MetricType::kGauge:
          out += prometheus_key(fam.name, inst.labels) + " " +
                 format_value(inst.gauge.value()) + "\n";
          break;
        case MetricType::kHistogram: {
          if (inst.histogram == nullptr) break;
          const Histogram& h = *inst.histogram;
          u64 cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket(i);
            out += prometheus_key(fam.name + "_bucket",
                                  with_le(inst.labels,
                                          format_value(h.bounds()[i]))) +
                   " " + strfmt("%llu",
                                static_cast<unsigned long long>(cumulative)) +
                   "\n";
          }
          out += prometheus_key(fam.name + "_bucket",
                                with_le(inst.labels, "+Inf")) +
                 " " + strfmt("%llu",
                              static_cast<unsigned long long>(h.count())) +
                 "\n";
          out += prometheus_key(fam.name + "_sum", inst.labels) + " " +
                 format_value(h.sum()) + "\n";
          out += prometheus_key(fam.name + "_count", inst.labels) + " " +
                 strfmt("%llu",
                        static_cast<unsigned long long>(h.count())) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

void write_prometheus_file(const std::filesystem::path& path,
                           const MetricsRegistry& reg) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << render_prometheus(reg);
  out.flush();
  if (!out) {
    throw std::runtime_error(
        strfmt("failed to write %s", path.string().c_str()));
  }
}

std::map<std::string, double> parse_prometheus(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    // The value is the text after the last space outside the label block
    // (label values are quoted, so the last '}' splits reliably; bare
    // samples split at the last space).
    const std::size_t close = line.rfind('}');
    const std::size_t split = line.find(' ', close == std::string_view::npos
                                                  ? 0
                                                  : close);
    if (split == std::string_view::npos || split == 0) {
      throw std::runtime_error("malformed sample line: " + std::string(line));
    }
    const std::string key(line.substr(0, split));
    const std::string value_text(line.substr(split + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      throw std::runtime_error("malformed sample value: " + std::string(line));
    }
    out[key] = value;
  }
  return out;
}

}  // namespace bgp::obs
