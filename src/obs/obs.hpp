// Flight recorder: the process-wide observability hub. Owns one
// SpanRecorder per (node, core) plus the MetricsRegistry every subsystem
// feeds, and pre-registers handles for the well-known metrics so hot
// instrumentation sites never do a name lookup.
//
// Installation is a single global pointer: every site is written as
//
//   if (auto* fr = obs::recorder()) { ... }
//
// so with no recorder installed (the default) the entire layer costs one
// load-and-branch and, crucially, never touches a simulated clock —
// disabled runs stay byte-identical to an uninstrumented build
// (bench/tab_overhead asserts this).
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "obs/span_recorder.hpp"

namespace bgp::obs {

struct ObsConfig {
  /// Master switch; pc::Session creates and installs a FlightRecorder
  /// when set.
  bool enabled = false;
  /// Per-rank span/instant ring capacity (oldest evicted beyond this).
  std::size_t span_capacity = std::size_t{1} << 16;
  /// Simulated cycles billed to the instrumented core per recorded span,
  /// charged *after* the span closes so durations measure the activity
  /// alone. docs/observability.md documents the budget; tab_overhead
  /// asserts it. Set to 0 for a zero-perturbation recording.
  cycles_t per_span_overhead = 4;
  /// Write per-node .bgps span files next to the dumps at finalize (read
  /// back by bgpc_obs).
  bool write_spans = true;
};

/// Collective kinds with a dedicated latency histogram.
enum class CollOp : u8 { kBarrier, kBcast, kAllreduce, kAlltoall, kAllgather };
inline constexpr unsigned kNumCollOps = 5;
[[nodiscard]] std::string_view to_string(CollOp op) noexcept;

/// Pre-registered handles for the metrics the simulator itself maintains
/// (stable addresses; see MetricsRegistry). Everything here also remains
/// reachable through the registry by name.
struct WellKnown {
  Counter* upc_initialize_calls = nullptr;
  Counter* upc_start_calls = nullptr;
  Counter* upc_stop_calls = nullptr;
  Counter* upc_finalize_calls = nullptr;
  Counter* upc_overhead_cycles = nullptr;
  Counter* dump_writes = nullptr;
  Counter* dump_bytes = nullptr;
  Counter* dump_retries = nullptr;
  Counter* dump_failures = nullptr;
  Counter* trace_seals = nullptr;
  Counter* trace_samples = nullptr;
  Counter* trace_intervals = nullptr;
  Counter* trace_drops = nullptr;
  Counter* rank_deaths = nullptr;
  Counter* ranks_stranded = nullptr;
  Counter* deaths_detected = nullptr;
  Counter* ft_revokes = nullptr;
  Counter* ft_agreements = nullptr;
  Counter* ft_shrinks = nullptr;
  Counter* coll_ops = nullptr;
  Counter* coll_bytes = nullptr;
  Counter* barrier_entries = nullptr;
  Gauge* spans_recorded = nullptr;
  Gauge* spans_dropped = nullptr;
  Histogram* coll_cycles[kNumCollOps] = {};
};

class FlightRecorder {
 public:
  FlightRecorder(unsigned nodes, unsigned cores_per_node,
                 ObsConfig config = {});

  [[nodiscard]] SpanRecorder& rank(unsigned node, unsigned core) {
    return recorders_[node * cores_per_node_ + core];
  }
  [[nodiscard]] const SpanRecorder& rank(unsigned node, unsigned core) const {
    return recorders_[node * cores_per_node_ + core];
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const WellKnown& wk() const noexcept { return wk_; }
  [[nodiscard]] const ObsConfig& config() const noexcept { return config_; }
  [[nodiscard]] unsigned nodes() const noexcept { return nodes_; }
  [[nodiscard]] unsigned cores_per_node() const noexcept {
    return cores_per_node_;
  }

  /// Refresh the recorder's self-metrics (span totals/drops) from the
  /// per-rank rings; exporters call this before rendering.
  void update_self_metrics();

  /// All completed spans / instants, ordered by (node, core, begin time).
  [[nodiscard]] std::vector<SpanRec> all_spans() const;
  [[nodiscard]] std::vector<InstantRec> all_instants() const;
  /// One node's share of the above (for per-node span files).
  [[nodiscard]] std::vector<SpanRec> node_spans(unsigned node) const;
  [[nodiscard]] std::vector<InstantRec> node_instants(unsigned node) const;
  [[nodiscard]] u64 spans_dropped() const noexcept;

 private:
  ObsConfig config_;
  unsigned nodes_;
  unsigned cores_per_node_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanRecorder> recorders_;
  MetricsRegistry metrics_;
  WellKnown wk_;
};

namespace detail {
inline FlightRecorder* g_recorder = nullptr;
}

/// The installed recorder, or nullptr when observability is off. The
/// null check *is* the disabled fast path.
[[nodiscard]] inline FlightRecorder* recorder() noexcept {
  return detail::g_recorder;
}
void set_recorder(FlightRecorder* fr) noexcept;

/// The installed recorder's latency histogram for `op`, or nullptr.
[[nodiscard]] Histogram* collective_histogram(CollOp op) noexcept;

}  // namespace bgp::obs
