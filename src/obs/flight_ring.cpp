#include "obs/flight_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <span>
#include <system_error>

#include "common/crc.hpp"

namespace bgp::obs {

namespace {

// Header field offsets (see the layout comment in the header file).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffSlotBytes = 12;
constexpr std::size_t kOffNumSlots = 16;
constexpr std::size_t kOffClean = 20;
constexpr std::size_t kOffHead = 24;
constexpr std::size_t kHeaderBytes = 32;

// Slot frame: u64 seq, u32 len, u32 crc, then text.
constexpr std::size_t kSlotFrameBytes = 16;

template <typename T>
T load_raw(const std::byte* base, std::size_t off) noexcept {
  T v;
  std::memcpy(&v, base + off, sizeof(T));
  return v;
}

template <typename T>
void store_raw(std::byte* base, std::size_t off, T v) noexcept {
  std::memcpy(base + off, &v, sizeof(T));
}

[[nodiscard]] std::atomic_ref<u64> seq_ref(std::byte* slot) noexcept {
  return std::atomic_ref<u64>(*reinterpret_cast<u64*>(slot));
}

/// Validate one slot frame without allocating (async-signal-safe).
/// On success points `text`/`len` into the mapping.
bool slot_ok(const std::byte* slot, u32 slot_bytes, u64& seq,
             const char*& text, u32& len) noexcept {
  seq = std::atomic_ref<const u64>(*reinterpret_cast<const u64*>(slot))
            .load(std::memory_order_acquire);
  if (seq == 0) return false;
  len = load_raw<u32>(slot, 8);
  if (len > slot_bytes - kSlotFrameBytes) return false;
  const u32 crc = load_raw<u32>(slot, 12);
  const auto* body = slot + kSlotFrameBytes;
  if (crc32(std::span<const std::byte>(body, len)) != crc) return false;
  text = reinterpret_cast<const char*>(body);
  return true;
}

[[nodiscard]] u32 round_up8(u32 v) noexcept { return (v + 7u) & ~7u; }

void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

std::vector<std::string> salvage_flight_ring(
    const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {};
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(kHeaderBytes)) {
    ::close(fd);
    return {};
  }
  std::vector<std::byte> buf(static_cast<std::size_t>(st.st_size));
  std::size_t got = 0;
  while (got < buf.size()) {
    const ssize_t n = ::pread(fd, buf.data() + got, buf.size() - got,
                              static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (got < kHeaderBytes) return {};

  const std::byte* base = buf.data();
  if (std::memcmp(base, kFlightMagic, sizeof(kFlightMagic)) != 0) return {};
  if (load_raw<u32>(base, kOffVersion) != kFlightVersion) return {};
  const u32 slot_bytes = load_raw<u32>(base, kOffSlotBytes);
  const u32 num_slots = load_raw<u32>(base, kOffNumSlots);
  if (slot_bytes < kSlotFrameBytes + 1 || slot_bytes > (1u << 20) ||
      num_slots == 0 || num_slots > (1u << 20)) {
    return {};
  }
  if (load_raw<u32>(base, kOffClean) != 0) return {};  // clean close: no crash
  const std::size_t need =
      kHeaderBytes + static_cast<std::size_t>(slot_bytes) * num_slots;
  if (got < need) return {};

  std::vector<std::pair<u64, std::string>> found;
  for (u32 i = 0; i < num_slots; ++i) {
    const std::byte* slot = base + kHeaderBytes +
                            static_cast<std::size_t>(i) * slot_bytes;
    u64 seq = 0;
    u32 len = 0;
    const char* text = nullptr;
    if (slot_ok(slot, slot_bytes, seq, text, len)) {
      found.emplace_back(seq, std::string(text, len));
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [seq, text] : found) out.push_back(std::move(text));
  return out;
}

FlightRing::FlightRing(FlightRingConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.slot_bytes = std::max<u32>(round_up8(cfg_.slot_bytes), 32);
  cfg_.num_slots = std::max<u32>(cfg_.num_slots, 8);

  // A pre-existing dirty ring is crash evidence: salvage before reset.
  std::error_code ec;
  if (std::filesystem::exists(cfg_.path, ec)) {
    salvaged_ = salvage_flight_ring(cfg_.path);
    recovered_dirty_ = !salvaged_.empty();
  }

  map_bytes_ = kHeaderBytes +
               static_cast<std::size_t>(cfg_.slot_bytes) * cfg_.num_slots;
  const int fd =
      ::open(cfg_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) throw_errno("flight ring open");
  if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("flight ring ftruncate");
  }
  void* p = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw_errno("flight ring mmap");
  map_ = static_cast<std::byte*>(p);

  // Reset: fresh header, dirty while open, all slots empty.
  std::memset(map_, 0, map_bytes_);
  std::memcpy(map_ + kOffMagic, kFlightMagic, sizeof(kFlightMagic));
  store_raw<u32>(map_, kOffVersion, kFlightVersion);
  store_raw<u32>(map_, kOffSlotBytes, cfg_.slot_bytes);
  store_raw<u32>(map_, kOffNumSlots, cfg_.num_slots);
  store_raw<u32>(map_, kOffClean, 0);
  store_raw<u64>(map_, kOffHead, 0);
}

FlightRing::~FlightRing() {
  if (map_ != nullptr) {
    // Clean close: the next open knows there is no crash to explain.
    store_raw<u32>(map_, kOffClean, 1);
    ::munmap(map_, map_bytes_);
  }
}

std::byte* FlightRing::slot_base(u64 index) const noexcept {
  return map_ + kHeaderBytes +
         static_cast<std::size_t>(index % cfg_.num_slots) * cfg_.slot_bytes;
}

u64 FlightRing::head() const noexcept {
  return std::atomic_ref<const u64>(
             *reinterpret_cast<const u64*>(map_ + kOffHead))
      .load(std::memory_order_acquire);
}

void FlightRing::append(std::string_view line) noexcept {
  const u32 capacity = cfg_.slot_bytes - kSlotFrameBytes;
  const u32 len =
      static_cast<u32>(std::min<std::size_t>(line.size(), capacity));

  std::lock_guard lk(mu_);
  std::atomic_ref<u64> head(*reinterpret_cast<u64*>(map_ + kOffHead));
  const u64 claim = head.load(std::memory_order_relaxed);
  std::byte* slot = slot_base(claim);

  // Invalidate -> body -> publish: a crash at any point leaves either the
  // old record (CRC-valid), an empty slot, or a CRC-invalid torn body —
  // never a wrong-but-valid record.
  seq_ref(slot).store(0, std::memory_order_release);
  store_raw<u32>(slot, 8, len);
  store_raw<u32>(
      slot, 12,
      crc32(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(line.data()), len)));
  std::memcpy(slot + kSlotFrameBytes, line.data(), len);
  seq_ref(slot).store(claim + 1, std::memory_order_release);
  head.store(claim + 1, std::memory_order_release);
}

bool FlightRing::read_slot(u64 index, u64& seq, std::string& text) const {
  const std::byte* slot = slot_base(index);
  u32 len = 0;
  const char* body = nullptr;
  if (!slot_ok(slot, cfg_.slot_bytes, seq, body, len)) return false;
  text.assign(body, len);
  return true;
}

std::vector<std::string> FlightRing::records() const {
  std::lock_guard lk(mu_);
  std::vector<std::pair<u64, std::string>> found;
  for (u32 i = 0; i < cfg_.num_slots; ++i) {
    u64 seq = 0;
    std::string text;
    if (read_slot(i, seq, text)) found.emplace_back(seq, std::move(text));
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [seq, text] : found) out.push_back(std::move(text));
  return out;
}

void FlightRing::dump_signal_safe(int fd) const noexcept {
  if (map_ == nullptr) return;
  // No allocation, no locks, only write(2): scan for the live sequence
  // range, then emit records in order by rescanning per sequence number
  // (O(slots^2) worst case — irrelevant on the way down).
  u64 lo = ~u64{0};
  u64 hi = 0;
  for (u32 i = 0; i < cfg_.num_slots; ++i) {
    u64 seq = 0;
    u32 len = 0;
    const char* text = nullptr;
    if (slot_ok(slot_base(i), cfg_.slot_bytes, seq, text, len)) {
      lo = std::min(lo, seq);
      hi = std::max(hi, seq);
    }
  }
  if (lo > hi) return;
  if (hi - lo >= cfg_.num_slots) hi = lo + cfg_.num_slots - 1;
  for (u64 s = lo; s <= hi; ++s) {
    for (u32 i = 0; i < cfg_.num_slots; ++i) {
      u64 seq = 0;
      u32 len = 0;
      const char* text = nullptr;
      if (!slot_ok(slot_base(i), cfg_.slot_bytes, seq, text, len)) continue;
      if (seq != s) continue;
      std::size_t off = 0;
      while (off < len) {
        const ssize_t n = ::write(fd, text + off, len - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
      }
      ssize_t n;
      do {
        n = ::write(fd, "\n", 1);
      } while (n < 0 && errno == EINTR);
      break;
    }
  }
}

}  // namespace bgp::obs
