// Per-node span files (<app>.node<N>.bgps): a line-oriented text format
// written next to the counter dumps when the flight recorder is on, and
// read back by bgpc_obs to merge a whole partition's spans and print a
// self-profile. Header line, then one `S` line per completed span and
// one `I` line per instant event.
//
//   bgpspans 1 <app> node=<N> spans=<n> instants=<m> dropped=<d>
//   S <name> <cat> <core> <depth> <begin_cyc> <end_cyc> <begin_ns> <end_ns>
//   I <name> <cat> <core> <cycles> <ns>
#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span_recorder.hpp"

namespace bgp::obs {

class FlightRecorder;

inline constexpr unsigned kSpanFormatVersion = 1;

[[nodiscard]] std::filesystem::path span_file_path(
    const std::filesystem::path& dir, std::string_view app, unsigned node);

/// Write one node's spans/instants (throws on I/O error).
void write_span_file(const std::filesystem::path& path, std::string_view app,
                     unsigned node, std::span<const SpanRec> spans,
                     std::span<const InstantRec> instants, u64 dropped);
/// Convenience: exports fr.node_spans(node) / fr.node_instants(node).
void write_span_file(const std::filesystem::path& path, std::string_view app,
                     unsigned node, const FlightRecorder& fr);

struct SpanFile {
  std::string app;
  unsigned node = 0;
  u64 dropped = 0;
  std::vector<SpanRec> spans;
  std::vector<InstantRec> instants;
};

/// Parse one .bgps file (throws std::runtime_error on malformed input).
[[nodiscard]] SpanFile load_span_file(const std::filesystem::path& path);

/// All of `app`'s span files under `dir`, merged and ordered by
/// (node, core, begin time).
struct SpanSet {
  std::vector<unsigned> nodes;  ///< nodes a file was found for, ascending
  std::vector<SpanRec> spans;
  std::vector<InstantRec> instants;
  u64 dropped = 0;
};
[[nodiscard]] SpanSet load_span_dir(const std::filesystem::path& dir,
                                    std::string_view app);

/// Aggregated self-profile: one row per span name, sorted by inclusive
/// simulated cycles (descending).
struct ProfileRow {
  std::string name;
  SpanCat cat = SpanCat::kRegion;
  u64 calls = 0;
  u64 cycles = 0;   ///< total inclusive simulated cycles
  u64 host_ns = 0;  ///< total inclusive host nanoseconds
};
[[nodiscard]] std::vector<ProfileRow> self_profile(
    std::span<const SpanRec> spans);

}  // namespace bgp::obs
