#include "obs/span_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/strfmt.hpp"
#include "obs/obs.hpp"

namespace bgp::obs {

namespace {

/// Span names are single tokens in the file format.
std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n') c = '_';
  }
  return out.empty() ? std::string("_") : out;
}

[[noreturn]] void malformed(const std::filesystem::path& path,
                            const char* what) {
  throw std::runtime_error(
      strfmt("%s: malformed span file (%s)", path.string().c_str(), what));
}

}  // namespace

std::filesystem::path span_file_path(const std::filesystem::path& dir,
                                     std::string_view app, unsigned node) {
  return dir / strfmt("%s.node%04u.bgps", std::string(app).c_str(), node);
}

void write_span_file(const std::filesystem::path& path, std::string_view app,
                     unsigned node, std::span<const SpanRec> spans,
                     std::span<const InstantRec> instants, u64 dropped) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << strfmt("bgpspans %u %s node=%u spans=%zu instants=%zu dropped=%llu\n",
                kSpanFormatVersion, sanitize(app).c_str(), node, spans.size(),
                instants.size(), static_cast<unsigned long long>(dropped));
  for (const SpanRec& s : spans) {
    out << strfmt("S %s %s %u %u %llu %llu %llu %llu\n",
                  sanitize(s.name).c_str(),
                  std::string(to_string(s.cat)).c_str(), s.core, s.depth,
                  static_cast<unsigned long long>(s.begin_cycles),
                  static_cast<unsigned long long>(s.end_cycles),
                  static_cast<unsigned long long>(s.begin_host_ns),
                  static_cast<unsigned long long>(s.end_host_ns));
  }
  for (const InstantRec& i : instants) {
    out << strfmt("I %s %s %u %llu %llu\n", sanitize(i.name).c_str(),
                  std::string(to_string(i.cat)).c_str(), i.core,
                  static_cast<unsigned long long>(i.cycles),
                  static_cast<unsigned long long>(i.host_ns));
  }
  out.flush();
  if (!out) {
    throw std::runtime_error(
        strfmt("failed to write %s", path.string().c_str()));
  }
}

void write_span_file(const std::filesystem::path& path, std::string_view app,
                     unsigned node, const FlightRecorder& fr) {
  u64 dropped = 0;
  for (unsigned c = 0; c < fr.cores_per_node(); ++c) {
    dropped += fr.rank(node, c).spans_dropped() +
               fr.rank(node, c).instants_dropped();
  }
  const auto spans = fr.node_spans(node);
  const auto instants = fr.node_instants(node);
  write_span_file(path, app, node, spans, instants, dropped);
}

SpanFile load_span_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        strfmt("cannot open %s", path.string().c_str()));
  }
  SpanFile out;
  std::string line;
  if (!std::getline(in, line)) malformed(path, "empty file");
  {
    std::istringstream hdr(line);
    std::string magic;
    unsigned version = 0;
    std::string node_kv, spans_kv, instants_kv, dropped_kv;
    hdr >> magic >> version >> out.app >> node_kv >> spans_kv >> instants_kv >>
        dropped_kv;
    if (!hdr || magic != "bgpspans") malformed(path, "bad header");
    if (version != kSpanFormatVersion) malformed(path, "unknown version");
    if (node_kv.rfind("node=", 0) != 0 || dropped_kv.rfind("dropped=", 0) != 0) {
      malformed(path, "bad header fields");
    }
    out.node = static_cast<unsigned>(std::stoul(node_kv.substr(5)));
    out.dropped = std::stoull(dropped_kv.substr(8));
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream rec(line);
    std::string tag, name, cat_text;
    rec >> tag >> name >> cat_text;
    SpanCat cat;
    if (!rec || !parse_span_cat(cat_text, cat)) malformed(path, "bad record");
    if (tag == "S") {
      SpanRec s;
      s.name = name;
      s.cat = cat;
      s.node = out.node;
      unsigned long long bc = 0, ec = 0, bns = 0, ens = 0;
      rec >> s.core >> s.depth >> bc >> ec >> bns >> ens;
      if (!rec) malformed(path, "bad span record");
      s.begin_cycles = bc;
      s.end_cycles = ec;
      s.begin_host_ns = bns;
      s.end_host_ns = ens;
      out.spans.push_back(std::move(s));
    } else if (tag == "I") {
      InstantRec i;
      i.name = name;
      i.cat = cat;
      i.node = out.node;
      unsigned long long c = 0, ns = 0;
      rec >> i.core >> c >> ns;
      if (!rec) malformed(path, "bad instant record");
      i.cycles = c;
      i.host_ns = ns;
      out.instants.push_back(std::move(i));
    } else {
      malformed(path, "unknown record tag");
    }
  }
  return out;
}

SpanSet load_span_dir(const std::filesystem::path& dir, std::string_view app) {
  std::vector<std::filesystem::path> paths;
  const std::string prefix = std::string(app) + ".node";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string fname = entry.path().filename().string();
    if (entry.path().extension() == ".bgps" && fname.rfind(prefix, 0) == 0) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  SpanSet out;
  for (const auto& path : paths) {
    SpanFile file = load_span_file(path);
    out.nodes.push_back(file.node);
    out.dropped += file.dropped;
    out.spans.insert(out.spans.end(),
                     std::make_move_iterator(file.spans.begin()),
                     std::make_move_iterator(file.spans.end()));
    out.instants.insert(out.instants.end(),
                        std::make_move_iterator(file.instants.begin()),
                        std::make_move_iterator(file.instants.end()));
  }
  std::sort(out.nodes.begin(), out.nodes.end());
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const SpanRec& a, const SpanRec& b) {
                     if (a.node != b.node) return a.node < b.node;
                     if (a.core != b.core) return a.core < b.core;
                     if (a.begin_cycles != b.begin_cycles) {
                       return a.begin_cycles < b.begin_cycles;
                     }
                     return a.depth < b.depth;
                   });
  std::stable_sort(out.instants.begin(), out.instants.end(),
                   [](const InstantRec& a, const InstantRec& b) {
                     if (a.node != b.node) return a.node < b.node;
                     if (a.core != b.core) return a.core < b.core;
                     return a.cycles < b.cycles;
                   });
  return out;
}

std::vector<ProfileRow> self_profile(std::span<const SpanRec> spans) {
  std::map<std::string, ProfileRow> by_name;
  for (const SpanRec& s : spans) {
    ProfileRow& row = by_name[s.name];
    if (row.calls == 0) {
      row.name = s.name;
      row.cat = s.cat;
    }
    ++row.calls;
    row.cycles +=
        s.end_cycles > s.begin_cycles ? s.end_cycles - s.begin_cycles : 0;
    row.host_ns +=
        s.end_host_ns > s.begin_host_ns ? s.end_host_ns - s.begin_host_ns : 0;
  }
  std::vector<ProfileRow> rows;
  rows.reserve(by_name.size());
  for (auto& [_, row] : by_name) rows.push_back(std::move(row));
  std::stable_sort(rows.begin(), rows.end(),
                   [](const ProfileRow& a, const ProfileRow& b) {
                     if (a.cycles != b.cycles) return a.cycles > b.cycles;
                     return a.name < b.name;
                   });
  return rows;
}

}  // namespace bgp::obs
