// Process-wide metrics registry for the flight recorder: monotonic
// counters, gauges and fixed-bucket histograms, grouped into families
// (one name + help + type, many label sets) exactly the way the
// Prometheus exposition format models them. Handles returned by the
// registry stay valid for its lifetime (instances live in deques), so
// subsystems fetch their counter once and bump a pointer afterwards.
//
// Registration (counter()/gauge()/histogram()) is serialized by an
// internal mutex and renderers snapshot under the same lock
// (families_lock()), so a daemon thread can register series while another
// thread renders the exposition. *Updates* are lock-free atomics: under
// the parallel epoch scheduler, rank segments on different nodes bump
// shared series concurrently. Counter increments and histogram
// observations are commutative (integer adds; histogram sums are integral
// cycle counts well under 2^53, so double addition is exact), which keeps
// rendered output byte-identical regardless of update interleaving.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace bgp::obs {

/// Sorted-insertion is the caller's job only for determinism of output
/// order; lookup compares the full vector.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : u8 { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricType t) noexcept;

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void add(u64 n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] u64 value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

/// Free-moving instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    value_.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are the ascending finite upper bounds;
/// an implicit +Inf bucket catches the rest. Counts are stored
/// per-bucket (non-cumulative) and cumulated at render time.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket `i` (i == bounds().size() is the +Inf bucket).
  [[nodiscard]] u64 bucket(std::size_t i) const {
    if (i >= num_counts_) throw std::out_of_range("histogram bucket index");
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 (+Inf). unique_ptr array because atomics are not
  /// movable and the bucket count is fixed at construction.
  std::unique_ptr<std::atomic<u64>[]> counts_;
  std::size_t num_counts_ = 0;
  std::atomic<double> sum_{0.0};
  std::atomic<u64> count_{0};
};

/// [a-zA-Z_:][a-zA-Z0-9_:]* — the Prometheus metric-name grammar.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;
/// [a-zA-Z_][a-zA-Z0-9_]* — label-name grammar.
[[nodiscard]] bool valid_label_name(std::string_view name) noexcept;

class MetricsRegistry {
 public:
  struct Instance {
    LabelSet labels;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    std::deque<Instance> instances;  ///< deque: handle addresses are stable
  };

  /// Fetch-or-create. Throws std::invalid_argument on a bad metric/label
  /// name and std::logic_error when `name` already exists with another
  /// type (both are programming errors in instrumentation code).
  Counter& counter(std::string_view name, std::string_view help,
                   LabelSet labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               LabelSet labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, LabelSet labels = {});

  /// The family table. Safe to iterate without a lock only when no
  /// concurrent registration can happen; renderers that may race one hold
  /// families_lock() across the iteration.
  [[nodiscard]] const std::deque<Family>& families() const noexcept {
    return families_;
  }
  /// Serializes against registration (instances/families never move or
  /// disappear — deques — but the table may grow underneath an unlocked
  /// iteration).
  [[nodiscard]] std::unique_lock<std::mutex> families_lock() const {
    return std::unique_lock<std::mutex>(*mu_);
  }
  /// Total number of (family, label set) series.
  [[nodiscard]] std::size_t num_series() const;

 private:
  Family& family(std::string_view name, std::string_view help,
                 MetricType type);
  Instance& instance(Family& fam, LabelSet&& labels);

  /// Guards registration and renderer iteration. Behind a unique_ptr so
  /// the registry (and FlightRecorder, which holds one by value) stays
  /// movable; handles and locks stay valid across a move.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::deque<Family> families_;
};

}  // namespace bgp::obs
