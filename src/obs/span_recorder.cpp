#include "obs/span_recorder.hpp"

namespace bgp::obs {

std::string_view to_string(SpanCat cat) noexcept {
  switch (cat) {
    case SpanCat::kUpc: return "upc";
    case SpanCat::kCollective: return "collective";
    case SpanCat::kFt: return "ft";
    case SpanCat::kDump: return "dump";
    case SpanCat::kTrace: return "trace";
    case SpanCat::kRegion: return "region";
    case SpanCat::kFault: return "fault";
  }
  return "region";
}

bool parse_span_cat(std::string_view text, SpanCat& out) noexcept {
  for (const SpanCat cat :
       {SpanCat::kUpc, SpanCat::kCollective, SpanCat::kFt, SpanCat::kDump,
        SpanCat::kTrace, SpanCat::kRegion, SpanCat::kFault}) {
    if (text == to_string(cat)) {
      out = cat;
      return true;
    }
  }
  return false;
}

SpanRecorder::SpanRecorder(u32 node, u32 core, std::size_t capacity,
                           std::chrono::steady_clock::time_point epoch)
    : node_(node), core_(core), capacity_(capacity ? capacity : 1),
      epoch_(epoch) {}

u64 SpanRecorder::host_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

void SpanRecorder::begin(std::string_view name, SpanCat cat,
                         cycles_t now_cycles) {
  SpanRec& rec = open_.emplace_back();
  rec.name.assign(name);
  rec.cat = cat;
  rec.node = node_;
  rec.core = core_;
  rec.depth = static_cast<u32>(open_.size() - 1);
  rec.begin_cycles = now_cycles;
  rec.begin_host_ns = host_ns();
}

cycles_t SpanRecorder::end(cycles_t now_cycles) {
  if (open_.empty()) {
    ++unmatched_ends_;
    return 0;
  }
  SpanRec rec = std::move(open_.back());
  open_.pop_back();
  rec.end_cycles = now_cycles;
  rec.end_host_ns = host_ns();
  const cycles_t dur =
      rec.end_cycles > rec.begin_cycles ? rec.end_cycles - rec.begin_cycles : 0;
  ++spans_total_;
  done_.push_back(std::move(rec));
  if (done_.size() > capacity_) {
    done_.pop_front();
    ++spans_dropped_;
  }
  return dur;
}

void SpanRecorder::instant(std::string_view name, SpanCat cat,
                           cycles_t now_cycles) {
  InstantRec rec;
  rec.name.assign(name);
  rec.cat = cat;
  rec.node = node_;
  rec.core = core_;
  rec.cycles = now_cycles;
  rec.host_ns = host_ns();
  ++instants_total_;
  instants_.push_back(std::move(rec));
  if (instants_.size() > capacity_) {
    instants_.pop_front();
    ++instants_dropped_;
  }
}

}  // namespace bgp::obs
