// Threshold-interrupt-driven time-series sampler (the tentpole of the
// tracing subsystem). The UPC unit can raise an interrupt when a counter
// reaches a threshold (paper §I/§III); the sampler arms that machinery on
// the cycle counter: every `interval_cycles` counted cycles the interrupt
// fires, the sampler snapshots the watched counter set, pushes the
// per-interval deltas into a bounded ring buffer and re-arms the threshold
// for the next boundary. Nodes whose programmed counter mode has no cycle
// counter (odd-card nodes monitoring memory events) fall back to the
// paper's monitoring-thread pattern: the runtime pulses the sampler at
// instrumentation points and it catches up against the node Time Base.
//
// An increment that crosses several boundaries at once (one long loop
// bundle) raises one interrupt; the sampler coalesces the missed
// boundaries into a single interval record spanning them, so no cycles are
// ever unaccounted. Every snapshot charges a modeled per-sample overhead
// that the runtime bills to the pulsing core (reported by bench/tab_overhead
// next to the paper's 196-cycle figure).
#pragma once

#include <vector>

#include "sys/node.hpp"
#include "trace/trace_buffer.hpp"

namespace bgp::trace {

struct SamplerConfig {
  cycles_t interval_cycles = 10'000;
  /// Events to snapshot each interval (pick events of the node's
  /// programmed mode; others alias the physical counter, as on hardware).
  std::vector<isa::EventId> events;
  /// Modeled cost of one snapshot (interrupt entry + reading the watched
  /// counters over the memory-mapped path + exit).
  cycles_t per_sample_overhead = 64;
};

class Sampler {
 public:
  Sampler(sys::Node& node, SamplerConfig config, TraceBuffer& buffer);

  /// Begin sampling: snapshot the baseline and, when the node's mode
  /// covers the core-0 cycle counter, arm the threshold interrupt at the
  /// first interval boundary. Idempotent.
  void arm();

  /// Stop sampling (final catch-up poll happens first). The partial tail
  /// interval past the last boundary is discarded.
  void disarm();

  /// Catch-up from an instrumentation point: close every interval boundary
  /// the pacer clock passed since the last sample. Returns the number of
  /// interval records produced. No-op while disarmed or while the UPC unit
  /// is stopped.
  unsigned poll();

  /// Overhead cycles accrued since the last call (the runtime charges this
  /// to the pulsing core and zeroes it).
  [[nodiscard]] cycles_t take_pending_overhead() noexcept {
    const cycles_t o = pending_overhead_;
    pending_overhead_ = 0;
    return o;
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  /// True when sampling is paced by threshold interrupts (mode covers the
  /// cycle counter); false when Time-Base polled.
  [[nodiscard]] bool interrupt_driven() const noexcept {
    return interrupt_driven_;
  }
  [[nodiscard]] const SamplerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] u64 samples() const noexcept { return samples_; }
  [[nodiscard]] cycles_t overhead_cycles() const noexcept {
    return overhead_cycles_;
  }
  /// Interval boundaries closed so far.
  [[nodiscard]] u64 intervals_closed() const noexcept {
    return intervals_closed_;
  }

 private:
  /// Threshold-interrupt delivery (registered once as a UPC listener).
  void on_threshold(u8 counter);
  /// Pacer clock: cycles of monitored progress since arm().
  [[nodiscard]] cycles_t pacer_now() const;
  /// Close all boundaries up to `rel_now`, emitting one (possibly
  /// coalesced) interval record. Returns records produced (0 or 1).
  unsigned advance_to(cycles_t rel_now);
  [[nodiscard]] std::vector<u64> snapshot_counters() const;
  void rearm_threshold();

  sys::Node& node_;
  SamplerConfig config_;
  TraceBuffer& buffer_;
  bool armed_ = false;
  bool listener_installed_ = false;
  bool interrupt_driven_ = false;
  bool in_advance_ = false;  ///< reentrancy guard (overhead charge ticks)
  u8 pacer_counter_ = 0;
  u32 pacer_event_ = 0;
  cycles_t pacer_origin_ = 0;  ///< pacer clock value at arm()
  u64 intervals_closed_ = 0;
  std::vector<u64> last_snapshot_;
  u64 samples_ = 0;
  cycles_t overhead_cycles_ = 0;
  cycles_t pending_overhead_ = 0;
};

}  // namespace bgp::trace
