#include "trace/trace_buffer.hpp"

#include <stdexcept>

namespace bgp::trace {

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("trace buffer capacity must be positive");
  }
}

void TraceBuffer::push(IntervalRecord record) {
  if (records_.size() == capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  records_.push_back(std::move(record));
  ++total_pushed_;
}

}  // namespace bgp::trace
