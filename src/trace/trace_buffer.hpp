// Bounded per-node ring buffer of sampled intervals. Tracing must never
// grow without bound on a long run (the paper's 40k-node machine would
// produce tens of millions of intervals): the buffer holds a fixed number
// of interval records, evicting the oldest — with drop accounting — when a
// writer is not draining it fast enough (or at all, in in-memory mode).
#pragma once

#include <cstddef>
#include <deque>

#include "trace/traceformat.hpp"

namespace bgp::trace {

class TraceBuffer {
 public:
  /// `capacity` is the hard bound on retained interval records.
  explicit TraceBuffer(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Append a record; evicts the oldest retained record (counting it as
  /// dropped) when the buffer is at capacity.
  void push(IntervalRecord record);

  /// Oldest retained record (drain side).
  [[nodiscard]] const IntervalRecord& front() const { return records_.front(); }
  void pop_front() { records_.pop_front(); }

  /// Records ever pushed / records evicted before being drained.
  [[nodiscard]] u64 total_pushed() const noexcept { return total_pushed_; }
  [[nodiscard]] u64 dropped() const noexcept { return dropped_; }

  /// Upper bound on the buffer's payload memory for records of `num_events`
  /// watched events (the configured-bound check of the acceptance criteria).
  [[nodiscard]] static std::size_t memory_bound_bytes(
      std::size_t capacity, std::size_t num_events) noexcept {
    return capacity * (sizeof(IntervalRecord) + num_events * sizeof(u64));
  }

 private:
  std::size_t capacity_;
  std::deque<IntervalRecord> records_;
  u64 total_pushed_ = 0;
  u64 dropped_ = 0;
};

}  // namespace bgp::trace
