// Streaming reader/writer for the sectioned trace format (traceformat.hpp).
//
// TraceWriter appends to a `.bgpt.partial` file as the ring buffer drains
// and seals it — footer plus atomic rename to `.bgpt` — on clean close, so
// a node that dies mid-run leaves a partial file whose complete chunks are
// still minable. TraceReader walks a sealed or partial file one interval at
// a time, holding at most one chunk in memory, verifying each section's
// CRC; a footer-less tail truncates cleanly instead of erroring.
#pragma once

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "common/binio.hpp"
#include "trace/traceformat.hpp"

namespace bgp::trace {

class TraceWriter {
 public:
  /// Records buffered before a chunk is committed to disk.
  static constexpr std::size_t kDefaultChunkRecords = 64;

  /// Opens `<base>.bgpt.partial` and writes the header immediately. `base`
  /// is the trace path without either suffix.
  TraceWriter(std::filesystem::path base, TraceMeta meta,
              std::size_t chunk_records = kDefaultChunkRecords);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Buffer one interval record; commits a chunk when the buffer fills.
  void append(const IntervalRecord& record);

  /// Commit buffered records as one chunk (no-op when nothing is buffered).
  void flush();

  /// Flush, write the footer, close and rename `.partial` → `.bgpt`.
  /// Returns the sealed path. The writer is unusable afterwards.
  std::filesystem::path finalize(const TraceTotals& totals);

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const std::filesystem::path& partial_path() const noexcept {
    return partial_path_;
  }
  [[nodiscard]] const std::filesystem::path& final_path() const noexcept {
    return final_path_;
  }
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  [[nodiscard]] u64 intervals_written() const noexcept {
    return intervals_written_;
  }

 private:
  void write_bytes(const std::vector<std::byte>& bytes);
  void put_record(BinaryWriter& w, const IntervalRecord& record) const;

  TraceMeta meta_;
  std::size_t chunk_records_;
  std::filesystem::path partial_path_;
  std::filesystem::path final_path_;
  std::ofstream out_;
  std::vector<IntervalRecord> pending_;
  u64 intervals_written_ = 0;
  bool finalized_ = false;
};

class TraceReader {
 public:
  /// Opens a sealed `.bgpt` or a crashed `.bgpt.partial` and parses the
  /// header (throws BinIoError when the header is damaged — a trace whose
  /// identity cannot be established is unusable).
  explicit TraceReader(const std::filesystem::path& path);

  /// Next interval record, or nullopt at end of trace. Reads at most one
  /// chunk ahead. Throws BinIoError on a corrupt (CRC-mismatched) chunk;
  /// a truncated tail ends the trace cleanly instead.
  std::optional<IntervalRecord> next();

  [[nodiscard]] const TraceMeta& meta() const noexcept { return meta_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// True once the footer was seen (clean close); totals() is set then.
  [[nodiscard]] bool sealed() const noexcept { return totals_.has_value(); }
  [[nodiscard]] const std::optional<TraceTotals>& totals() const noexcept {
    return totals_;
  }
  /// True when the file ended without a footer (node death / crash): the
  /// complete chunks were returned and the torn tail was discarded.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  [[nodiscard]] u64 records_read() const noexcept { return records_read_; }

 private:
  void parse_header();
  /// Load the next chunk into chunk_ (or set totals_/truncated_ and leave
  /// it empty). Returns true when records are available.
  bool load_chunk();
  /// Read exactly `n` bytes; returns the number actually read (short at a
  /// truncated tail).
  std::size_t read_raw(std::byte* dst, std::size_t n);
  [[nodiscard]] std::size_t record_bytes() const noexcept;

  std::filesystem::path path_;
  std::ifstream in_;
  TraceMeta meta_;
  std::vector<IntervalRecord> chunk_;
  std::size_t chunk_pos_ = 0;
  std::optional<TraceTotals> totals_;
  bool truncated_ = false;
  bool done_ = false;
  u64 records_read_ = 0;
};

}  // namespace bgp::trace
