#include "trace/tracer.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"
#include "obs/obs.hpp"

namespace bgp::trace {

namespace {

/// Mode 0 FP-side events for one core (the Figure-6 instruction classes).
void add_core_fp(std::vector<isa::EventId>& out, unsigned core) {
  for (unsigned op = 0; op < isa::kNumFpOps; ++op) {
    out.push_back(isa::ev::fpu_op(core, static_cast<isa::FpOp>(op)));
  }
  out.push_back(isa::ev::instr_completed(core));
  out.push_back(isa::ev::cycle_count(core));
}

void add_core_ls(std::vector<isa::EventId>& out, unsigned core) {
  for (unsigned op = 0; op < isa::kNumLsOps; ++op) {
    out.push_back(isa::ev::ls_op(core, static_cast<isa::LsOp>(op)));
  }
}

void add_core_mem(std::vector<isa::EventId>& out, unsigned core) {
  out.push_back(isa::ev::l1d(core, isa::L1dEvent::kReadAccess));
  out.push_back(isa::ev::l1d(core, isa::L1dEvent::kReadMiss));
  out.push_back(isa::ev::l1d(core, isa::L1dEvent::kWriteAccess));
  out.push_back(isa::ev::l2(core, isa::L2Event::kReadMiss));
  out.push_back(isa::ev::l2(core, isa::L2Event::kPrefetchHit));
}

/// Mode 1 chip-level memory set: the L3↔DDR traffic the paper's bandwidth
/// figures are built from.
std::vector<isa::EventId> mode1_events() {
  std::vector<isa::EventId> out;
  out.push_back(isa::ev::l3(isa::L3Event::kReadAccess));
  out.push_back(isa::ev::l3(isa::L3Event::kReadHit));
  out.push_back(isa::ev::l3(isa::L3Event::kReadMiss));
  out.push_back(isa::ev::l3(isa::L3Event::kWriteAccess));
  out.push_back(isa::ev::l3(isa::L3Event::kFillFromDdr));
  out.push_back(isa::ev::l3(isa::L3Event::kWritebackToDdr));
  for (unsigned ctrl = 0; ctrl < isa::kNumDdrControllers; ++ctrl) {
    out.push_back(isa::ev::ddr(ctrl, isa::DdrEvent::kBytesRead16B));
    out.push_back(isa::ev::ddr(ctrl, isa::DdrEvent::kBytesWritten16B));
    out.push_back(isa::ev::ddr(ctrl, isa::DdrEvent::kBusyCycles));
  }
  return out;
}

std::vector<isa::EventId> mode2_events() {
  std::vector<isa::EventId> out;
  out.push_back(isa::ev::torus(isa::TorusEvent::kBytesSent32B));
  out.push_back(isa::ev::torus(isa::TorusEvent::kBytesRecv32B));
  out.push_back(isa::ev::torus(isa::TorusEvent::kPacketsReceived));
  out.push_back(isa::ev::collective(isa::CollectiveEvent::kOperations));
  out.push_back(isa::ev::collective(isa::CollectiveEvent::kBytes32B));
  out.push_back(isa::ev::barrier(isa::BarrierEvent::kEntries));
  out.push_back(isa::ev::barrier(isa::BarrierEvent::kWaitCycles));
  return out;
}

std::vector<isa::EventId> mode3_events() {
  std::vector<isa::EventId> out;
  out.push_back(isa::ev::system(isa::SysEvent::kMpiSends));
  out.push_back(isa::ev::system(isa::SysEvent::kMpiRecvs));
  out.push_back(isa::ev::system(isa::SysEvent::kMpiCollectives));
  out.push_back(isa::ev::system(isa::SysEvent::kMpiWaitCycles));
  out.push_back(isa::ev::system(isa::SysEvent::kRankActiveCycles));
  out.push_back(isa::ev::system(isa::SysEvent::kRankIdleCycles));
  return out;
}

}  // namespace

const std::vector<std::string>& trace_preset_names() {
  static const std::vector<std::string> names = {"default", "fp", "mix",
                                                 "mem"};
  return names;
}

std::vector<isa::EventId> preset_trace_events(std::string_view preset,
                                              u8 mode) {
  if (mode >= isa::kNumCounterModes) {
    throw std::invalid_argument(
        strfmt("counter mode %u out of range", unsigned{mode}));
  }
  const bool known =
      preset == "default" || preset == "fp" || preset == "mix" ||
      preset == "mem";
  if (!known) {
    throw std::invalid_argument(
        strfmt("unknown trace preset '%.*s' (try --list)",
               static_cast<int>(preset.size()), preset.data()));
  }
  // Only mode 0 has per-core event families to choose between; the other
  // modes each have one sensible chip-level set.
  if (mode == 1) return mode1_events();
  if (mode == 2) return mode2_events();
  if (mode == 3) return mode3_events();

  std::vector<isa::EventId> out;
  for (unsigned core = 0; core < isa::kCoresPerNode; ++core) {
    add_core_fp(out, core);
    if (preset == "default" || preset == "mix") {
      add_core_ls(out, core);
      for (unsigned op = 0; op < isa::kNumIntOps; ++op) {
        out.push_back(isa::ev::int_op(core, static_cast<isa::IntOp>(op)));
      }
    }
    if (preset == "mem") {
      add_core_ls(out, core);
      add_core_mem(out, core);
    }
  }
  return out;
}

std::filesystem::path trace_file_base(const std::filesystem::path& dir,
                                      const std::string& app, unsigned node) {
  return dir / strfmt("%s.node%04u", app.c_str(), node);
}

namespace {

TraceMeta make_meta(const sys::Node& node, const TraceConfig& config,
                    const std::string& app_name, u8 mode,
                    std::vector<isa::EventId> events) {
  TraceMeta meta;
  meta.node_id = node.id();
  meta.card_id = node.card_id();
  meta.counter_mode = mode;
  meta.app_name = app_name;
  meta.interval_cycles = config.interval_cycles;
  const isa::EventId pacer = isa::ev::cycle_count(0);
  meta.pacer_event =
      isa::event_mode(pacer) == mode ? u32{pacer} : kPacerTimebase;
  meta.events = std::move(events);
  return meta;
}

SamplerConfig make_sampler_config(const TraceConfig& config,
                                  const std::vector<isa::EventId>& events) {
  SamplerConfig sc;
  sc.interval_cycles = config.interval_cycles;
  sc.events = events;
  sc.per_sample_overhead = config.per_sample_overhead;
  return sc;
}

}  // namespace

NodeTracer::NodeTracer(sys::Node& node, const TraceConfig& config,
                       const std::string& app_name, u8 mode)
    : buffer_(config.buffer_capacity),
      writer_(trace_file_base(config.trace_dir, app_name, node.id()),
              make_meta(node, config, app_name, mode,
                        preset_trace_events(config.preset, mode))),
      sampler_(node, make_sampler_config(config, writer_.meta().events),
               buffer_) {}

void NodeTracer::start() { sampler_.arm(); }

void NodeTracer::drain() {
  while (!buffer_.empty()) {
    writer_.append(buffer_.front());
    buffer_.pop_front();
  }
}

cycles_t NodeTracer::pulse() {
  sampler_.poll();
  drain();
  return sampler_.take_pending_overhead();
}

std::filesystem::path NodeTracer::seal() {
  if (writer_.finalized()) return writer_.final_path();
  sampler_.disarm();
  drain();
  TraceTotals totals;
  totals.intervals = buffer_.total_pushed();
  totals.dropped = buffer_.dropped();
  totals.samples = sampler_.samples();
  totals.overhead_cycles = sampler_.overhead_cycles();
  if (auto* fr = obs::recorder()) {
    fr->wk().trace_seals->add(1);
    fr->wk().trace_samples->add(totals.samples);
    fr->wk().trace_intervals->add(totals.intervals);
    fr->wk().trace_drops->add(totals.dropped);
  }
  return writer_.finalize(totals);
}

}  // namespace bgp::trace
