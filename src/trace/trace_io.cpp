#include "trace/trace_io.hpp"

#include <cstring>
#include <utility>

#include "common/crc.hpp"
#include "common/strfmt.hpp"

namespace bgp::trace {

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(std::filesystem::path base, TraceMeta meta,
                         std::size_t chunk_records)
    : meta_(std::move(meta)),
      chunk_records_(chunk_records == 0 ? 1 : chunk_records),
      partial_path_(base.string() + kPartialSuffix),
      final_path_(base.string() + kTraceSuffix) {
  out_.open(partial_path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw BinIoError(
        strfmt("cannot open trace file %s", partial_path_.string().c_str()));
  }
  BinaryWriter w;
  w.put<u32>(kTraceMagic);
  w.put<u32>(kTraceVersion);
  const std::size_t header_begin = w.size();
  w.put<u32>(meta_.node_id);
  w.put<u32>(meta_.card_id);
  w.put<u32>(meta_.counter_mode);
  w.put_string(meta_.app_name);
  w.put<u64>(meta_.interval_cycles);
  w.put<u32>(meta_.pacer_event);
  w.put<u32>(static_cast<u32>(meta_.events.size()));
  for (const isa::EventId ev : meta_.events) w.put<u16>(ev);
  w.put<u32>(crc32(std::span(w.buffer()).subspan(header_begin)));
  write_bytes(w.buffer());
  // The header must survive a mid-run node death even though the stream
  // stays open: flush it now so a .partial is always parseable.
  out_.flush();
}

TraceWriter::~TraceWriter() {
  // Not finalized: leave the .partial behind, complete chunks intact —
  // exactly what a dead node's trace should look like.
  if (!finalized_ && out_.is_open()) {
    try {
      flush();
    } catch (...) {
      // A failing disk (or a record the format cannot express) must not
      // escalate to std::terminate during unwinding; the trace simply ends
      // at the last committed chunk, like any other crash.
    }
    out_.close();
  }
}

void TraceWriter::put_record(BinaryWriter& w,
                             const IntervalRecord& record) const {
  w.put<u64>(record.index);
  w.put<u32>(record.spanned);
  w.put<u64>(record.t_begin);
  w.put<u64>(record.t_end);
  if (record.values.size() != meta_.events.size()) {
    throw BinIoError(
        strfmt("interval record has %zu values for %zu traced events",
               record.values.size(), meta_.events.size()));
  }
  for (const u64 v : record.values) w.put<u64>(v);
}

void TraceWriter::append(const IntervalRecord& record) {
  if (finalized_) {
    throw BinIoError("append to finalized trace");
  }
  pending_.push_back(record);
  if (pending_.size() >= chunk_records_) flush();
}

void TraceWriter::flush() {
  if (pending_.empty()) return;
  BinaryWriter w;
  w.put<u32>(static_cast<u32>(pending_.size()));
  for (const IntervalRecord& r : pending_) put_record(w, r);
  w.put<u32>(crc32(std::span(w.buffer())));
  write_bytes(w.buffer());
  intervals_written_ += pending_.size();
  pending_.clear();
  out_.flush();
}

std::filesystem::path TraceWriter::finalize(const TraceTotals& totals) {
  if (finalized_) return final_path_;
  flush();
  BinaryWriter w;
  w.put<u32>(0);  // sentinel: no more chunks
  w.put<u64>(totals.intervals);
  w.put<u64>(totals.dropped);
  w.put<u64>(totals.samples);
  w.put<u64>(totals.overhead_cycles);
  w.put<u32>(crc32(std::span(w.buffer())));
  write_bytes(w.buffer());
  out_.close();
  if (!out_) {
    throw BinIoError(
        strfmt("error closing trace %s", partial_path_.string().c_str()));
  }
  std::error_code ec;
  std::filesystem::rename(partial_path_, final_path_, ec);
  if (ec) {
    throw BinIoError(strfmt("cannot seal trace %s: %s",
                            final_path_.string().c_str(),
                            ec.message().c_str()));
  }
  finalized_ = true;
  return final_path_;
}

void TraceWriter::write_bytes(const std::vector<std::byte>& bytes) {
  out_.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!out_) {
    throw BinIoError(
        strfmt("short write to trace %s", partial_path_.string().c_str()));
  }
}

// ---------------------------------------------------------------------------
// TraceReader

TraceReader::TraceReader(const std::filesystem::path& path) : path_(path) {
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw BinIoError(strfmt("cannot open trace %s", path_.string().c_str()));
  }
  parse_header();
}

std::size_t TraceReader::read_raw(std::byte* dst, std::size_t n) {
  in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
  return static_cast<std::size_t>(in_.gcount());
}

void TraceReader::parse_header() {
  // The fixed prefix through the app-name length, then the variable tail.
  // Everything after magic+version is covered by the header CRC.
  auto read_or_throw = [this](std::vector<std::byte>& buf, std::size_t n) {
    const std::size_t old = buf.size();
    buf.resize(old + n);
    if (read_raw(buf.data() + old, n) != n) {
      throw BinIoError(
          strfmt("trace %s: truncated header", path_.string().c_str()));
    }
  };

  std::vector<std::byte> pre;
  read_or_throw(pre, 2 * sizeof(u32));
  {
    BinaryReader r(pre);
    if (r.get<u32>() != kTraceMagic) {
      throw BinIoError(
          strfmt("%s is not a BGPT trace (bad magic)", path_.string().c_str()));
    }
    const u32 version = r.get<u32>();
    if (version != kTraceVersion) {
      throw BinIoError(strfmt("trace %s: unsupported version %u",
                              path_.string().c_str(), version));
    }
  }

  std::vector<std::byte> hdr;
  read_or_throw(hdr, 3 * sizeof(u32) + sizeof(u32));  // ids + app-name length
  u32 name_len = 0;
  {
    BinaryReader r(hdr);
    meta_.node_id = r.get<u32>();
    meta_.card_id = r.get<u32>();
    meta_.counter_mode = r.get<u32>();
    name_len = r.get<u32>();
  }
  if (name_len > (1u << 20)) {
    throw BinIoError(
        strfmt("trace %s: implausible header", path_.string().c_str()));
  }
  read_or_throw(hdr, name_len + sizeof(u64) + 2 * sizeof(u32));
  u32 event_count = 0;
  {
    BinaryReader r(hdr);
    r.get<u32>();  // ids already parsed
    r.get<u32>();
    r.get<u32>();
    r.get<u32>();  // name length
    meta_.app_name.assign(
        reinterpret_cast<const char*>(hdr.data() + r.position()), name_len);
    const std::size_t tail = 4 * sizeof(u32) + name_len;
    BinaryReader t{std::span(hdr).subspan(tail)};
    meta_.interval_cycles = t.get<u64>();
    meta_.pacer_event = t.get<u32>();
    event_count = t.get<u32>();
  }
  if (event_count == 0 || event_count > isa::kNumCounterModes * 256u) {
    throw BinIoError(strfmt("trace %s: implausible event count %u",
                            path_.string().c_str(), event_count));
  }
  read_or_throw(hdr, event_count * sizeof(u16));
  {
    BinaryReader r{std::span(hdr).subspan(hdr.size() -
                                          event_count * sizeof(u16))};
    meta_.events.reserve(event_count);
    for (u32 i = 0; i < event_count; ++i) {
      meta_.events.push_back(r.get<u16>());
    }
  }
  std::byte crc_bytes[sizeof(u32)];
  if (read_raw(crc_bytes, sizeof(u32)) != sizeof(u32)) {
    throw BinIoError(
        strfmt("trace %s: truncated header", path_.string().c_str()));
  }
  u32 stored = 0;
  std::memcpy(&stored, crc_bytes, sizeof(u32));
  const u32 computed = crc32(std::span(hdr));
  if (stored != computed) {
    throw BinIoError(strfmt("trace %s: header CRC mismatch (stored %08X, "
                            "computed %08X)",
                            path_.string().c_str(), stored, computed));
  }
}

std::size_t TraceReader::record_bytes() const noexcept {
  return sizeof(u64) + sizeof(u32) + 2 * sizeof(u64) +
         meta_.events.size() * sizeof(u64);
}

bool TraceReader::load_chunk() {
  chunk_.clear();
  chunk_pos_ = 0;
  if (done_) return false;

  std::vector<std::byte> buf(sizeof(u32));
  const std::size_t got = read_raw(buf.data(), sizeof(u32));
  if (got != sizeof(u32)) {
    // Tail ends at (or torn inside) a section boundary: clean truncation.
    truncated_ = true;
    done_ = true;
    return false;
  }
  u32 count = 0;
  std::memcpy(&count, buf.data(), sizeof(u32));

  if (count == 0) {
    // Footer: totals + CRC over sentinel and totals.
    const std::size_t body = 4 * sizeof(u64);
    buf.resize(sizeof(u32) + body + sizeof(u32));
    if (read_raw(buf.data() + sizeof(u32), body + sizeof(u32)) !=
        body + sizeof(u32)) {
      truncated_ = true;
      done_ = true;
      return false;
    }
    const u32 computed = crc32(std::span(buf).first(sizeof(u32) + body));
    BinaryReader r{std::span(buf).subspan(sizeof(u32))};
    TraceTotals totals;
    totals.intervals = r.get<u64>();
    totals.dropped = r.get<u64>();
    totals.samples = r.get<u64>();
    totals.overhead_cycles = r.get<u64>();
    const u32 stored = r.get<u32>();
    if (stored != computed) {
      throw BinIoError(strfmt("trace %s: footer CRC mismatch",
                              path_.string().c_str()));
    }
    totals_ = totals;
    done_ = true;
    return false;
  }

  const std::size_t payload = static_cast<std::size_t>(count) * record_bytes();
  if (count > (1u << 24)) {
    throw BinIoError(strfmt("trace %s: implausible chunk of %u records",
                            path_.string().c_str(), count));
  }
  buf.resize(sizeof(u32) + payload + sizeof(u32));
  if (read_raw(buf.data() + sizeof(u32), payload + sizeof(u32)) !=
      payload + sizeof(u32)) {
    // Chunk torn mid-write by a dying node: discard it, end cleanly.
    truncated_ = true;
    done_ = true;
    return false;
  }
  const u32 computed = crc32(std::span(buf).first(sizeof(u32) + payload));
  u32 stored = 0;
  std::memcpy(&stored, buf.data() + sizeof(u32) + payload, sizeof(u32));
  if (stored != computed) {
    throw BinIoError(strfmt("trace %s: chunk CRC mismatch (stored %08X, "
                            "computed %08X)",
                            path_.string().c_str(), stored, computed));
  }

  BinaryReader r{std::span(buf).subspan(sizeof(u32), payload)};
  chunk_.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    IntervalRecord rec;
    rec.index = r.get<u64>();
    rec.spanned = r.get<u32>();
    rec.t_begin = r.get<u64>();
    rec.t_end = r.get<u64>();
    rec.values.resize(meta_.events.size());
    for (u64& v : rec.values) v = r.get<u64>();
    chunk_.push_back(std::move(rec));
  }
  return true;
}

std::optional<IntervalRecord> TraceReader::next() {
  if (chunk_pos_ >= chunk_.size() && !load_chunk()) {
    return std::nullopt;
  }
  ++records_read_;
  return std::move(chunk_[chunk_pos_++]);
}

}  // namespace bgp::trace
