// Per-node tracing front end: glues a Sampler, its bounded ring buffer and
// a streaming TraceWriter together, and resolves which events a node of a
// given counter mode should watch (the preset catalogue). The interface
// library owns one NodeTracer per node when tracing is enabled; the runtime
// pulses it from instrumentation points and charges the returned modeled
// overhead to the pulsing core.
#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/sampler.hpp"
#include "trace/trace_io.hpp"

namespace bgp::trace {

/// Session-level tracing knobs (carried inside pc::Options).
struct TraceConfig {
  bool enabled = false;
  /// Sampling period in cycles of the pacer clock.
  cycles_t interval_cycles = 10'000;
  /// Ring-buffer bound, in interval records per node.
  std::size_t buffer_capacity = 4096;
  /// Modeled cost of one snapshot (see docs/tracing.md for the budget).
  cycles_t per_sample_overhead = 64;
  /// Named event preset, resolved against each node's programmed mode.
  std::string preset = "default";
  /// Where trace files land (next to the .bgpc dumps by default).
  std::filesystem::path trace_dir = ".";
};

/// Event-preset names accepted by preset_trace_events (and the CLIs).
[[nodiscard]] const std::vector<std::string>& trace_preset_names();

/// The events a node programmed to `mode` watches under `preset`. Throws
/// std::invalid_argument for unknown presets. Presets that make no sense
/// for a mode degrade to that mode's default set.
[[nodiscard]] std::vector<isa::EventId> preset_trace_events(
    std::string_view preset, u8 mode);

/// `<dir>/<app>.node<NNNN>` — the trace path without its .bgpt suffix
/// (mirrors the dump naming convention).
[[nodiscard]] std::filesystem::path trace_file_base(
    const std::filesystem::path& dir, const std::string& app, unsigned node);

class NodeTracer {
 public:
  /// Opens the trace file (header only) immediately; sampling starts when
  /// the counters do. `mode` is the node's programmed counter mode.
  NodeTracer(sys::Node& node, const TraceConfig& config,
             const std::string& app_name, u8 mode);

  /// Arm the sampler (call when counting starts). Idempotent.
  void start();

  /// Instrumentation-point pulse: catch up the sampler, drain the ring
  /// buffer to disk, and return the modeled overhead cycles accrued since
  /// the last pulse (the caller charges them to the running core).
  cycles_t pulse();

  /// Disarm, drain, seal the trace (footer + atomic rename). Returns the
  /// sealed path. Idempotent after the first call.
  std::filesystem::path seal();

  [[nodiscard]] bool sealed() const noexcept { return writer_.finalized(); }
  [[nodiscard]] const Sampler& sampler() const noexcept { return sampler_; }
  [[nodiscard]] const TraceBuffer& buffer() const noexcept { return buffer_; }
  [[nodiscard]] const TraceWriter& writer() const noexcept { return writer_; }

 private:
  void drain();

  TraceBuffer buffer_;
  TraceWriter writer_;
  Sampler sampler_;
};

}  // namespace bgp::trace
