// Binary layout of the per-node time-series trace files written by the
// tracing layer and mined by the timeline post-processor. Little-endian
// throughout, per-section CRC32 like the v2 dump format (core/dumpformat).
//
//   header:  magic "BGPT" (u32) | version (u32) | node id (u32)
//            | card id (u32) | counter mode (u32) | app name (string)
//            | interval cycles (u64) | pacer event (u32, kPacerTimebase =
//            |   Time-Base polled) | event count (u32) | event ids (u16 each)
//            | header CRC32 (u32)
//   chunk:   interval count (u32, > 0) | that many interval records
//            | chunk CRC32 (u32)
//   footer:  sentinel 0 (u32) | intervals produced (u64) | intervals
//            | dropped (u64) | samples taken (u64) | sampling overhead
//            | cycles (u64) | footer CRC32 (u32)
//
//   interval record: first index (u64) | spanned intervals (u32)
//            | begin cycle (u64) | end cycle (u64)
//            | event count counter deltas (u64 each)
//
// Traces are streamed: the header is written when tracing starts, chunks
// are appended as the ring buffer fills, and the footer seals the file at
// BGP_Finalize — all into a `.partial` file that is atomically renamed to
// `.bgpt` on clean close (the PR 1 temp+rename convention). A node that
// dies mid-run leaves a footer-less `.partial` whose complete chunks still
// parse: traces truncate cleanly and the miner runs degraded.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/events.hpp"

namespace bgp::trace {

inline constexpr u32 kTraceMagic = 0x54504742;  // "BGPT" little-endian
inline constexpr u32 kTraceVersion = 1;

/// Pacer sentinel: the node had no cycle counter in its programmed mode, so
/// sampling was paced by Time-Base polling instead of threshold interrupts.
inline constexpr u32 kPacerTimebase = ~u32{0};

/// File name suffixes: sealed traces vs. still-streaming (or crashed) ones.
inline constexpr const char* kTraceSuffix = ".bgpt";
inline constexpr const char* kPartialSuffix = ".bgpt.partial";

/// Identity and sampling parameters of one node's trace (the header).
struct TraceMeta {
  u32 node_id = 0;
  u32 card_id = 0;
  u32 counter_mode = 0;
  std::string app_name;
  cycles_t interval_cycles = 0;
  /// Event whose physical counter paced the threshold interrupts, or
  /// kPacerTimebase when the sampler fell back to Time-Base polling.
  u32 pacer_event = kPacerTimebase;
  /// Events snapshotted each interval (all of the node's programmed mode);
  /// interval record values are parallel to this list.
  std::vector<isa::EventId> events;
};

/// One sampled interval: counter deltas over [t_begin, t_end). When the
/// pacer crossed several boundaries in one increment (a long uninterrupted
/// loop), the record is coalesced: it spans `spanned` intervals starting at
/// `index` and the deltas cover the whole span.
struct IntervalRecord {
  u64 index = 0;     ///< first interval index covered
  u32 spanned = 1;   ///< number of interval boundaries coalesced
  cycles_t t_begin = 0;
  cycles_t t_end = 0;
  std::vector<u64> values;  ///< parallel to TraceMeta::events

  [[nodiscard]] cycles_t span_cycles() const noexcept {
    return t_end - t_begin;
  }
};

/// Lifetime totals sealed into the footer on clean close.
struct TraceTotals {
  u64 intervals = 0;        ///< interval records produced
  u64 dropped = 0;          ///< records evicted unflushed (ring overflow)
  u64 samples = 0;          ///< counter-set snapshots taken
  cycles_t overhead_cycles = 0;  ///< modeled sampling cost charged to cores
};

}  // namespace bgp::trace
