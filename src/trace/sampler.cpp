#include "trace/sampler.hpp"

#include <stdexcept>

#include "trace/traceformat.hpp"

namespace bgp::trace {

Sampler::Sampler(sys::Node& node, SamplerConfig config, TraceBuffer& buffer)
    : node_(node), config_(std::move(config)), buffer_(buffer) {
  if (config_.interval_cycles == 0) {
    throw std::invalid_argument("sampler interval must be positive");
  }
  if (config_.events.empty()) {
    throw std::invalid_argument("sampler needs at least one event to watch");
  }
}

std::vector<u64> Sampler::snapshot_counters() const {
  // Reads go through the memory-mapped path, like a monitoring thread's
  // (or the interrupt service routine's) would.
  const auto& upc = node_.upc();
  std::vector<u64> values;
  values.reserve(config_.events.size());
  for (const isa::EventId ev : config_.events) {
    const u8 counter = isa::event_counter(ev);
    values.push_back(upc.mmio_read64(upc.mmio_base() + 8ull * counter));
  }
  return values;
}

void Sampler::arm() {
  if (armed_) return;
  auto& upc = node_.upc();
  // Pace by the core-0 cycle counter when the programmed mode covers it;
  // otherwise fall back to Time-Base polling from instrumentation points.
  const isa::EventId pacer = isa::ev::cycle_count(0);
  interrupt_driven_ = isa::event_mode(pacer) == upc.mode();
  pacer_counter_ = isa::event_counter(pacer);
  pacer_event_ = interrupt_driven_ ? pacer : kPacerTimebase;
  armed_ = true;
  pacer_origin_ = 0;  // set below, pacer_now() needs armed state
  pacer_origin_ = interrupt_driven_
                      ? upc.mmio_read64(upc.mmio_base() + 8ull * pacer_counter_)
                      : node_.timebase();
  intervals_closed_ = 0;
  last_snapshot_ = snapshot_counters();
  if (interrupt_driven_) {
    if (!listener_installed_) {
      upc.add_threshold_listener(
          [this](u8 counter, u64 /*value*/) { on_threshold(counter); });
      listener_installed_ = true;
    }
    upc::CounterConfig cfg = upc.config(pacer_counter_);
    cfg.interrupt_enable = true;
    cfg.threshold = pacer_origin_ + config_.interval_cycles;
    upc.configure(pacer_counter_, cfg);
  }
}

void Sampler::disarm() {
  if (!armed_) return;
  poll();
  if (interrupt_driven_) {
    auto& upc = node_.upc();
    upc::CounterConfig cfg = upc.config(pacer_counter_);
    cfg.interrupt_enable = false;
    cfg.threshold = 0;
    upc.configure(pacer_counter_, cfg);
  }
  armed_ = false;
}

cycles_t Sampler::pacer_now() const {
  if (interrupt_driven_) {
    const auto& upc = node_.upc();
    return upc.mmio_read64(upc.mmio_base() + 8ull * pacer_counter_) -
           pacer_origin_;
  }
  return node_.timebase() - pacer_origin_;
}

void Sampler::on_threshold(u8 counter) {
  if (!armed_ || in_advance_ || counter != pacer_counter_) return;
  advance_to(pacer_now());
}

unsigned Sampler::poll() {
  if (!armed_ || in_advance_ || !node_.upc().running()) return 0;
  return advance_to(pacer_now());
}

void Sampler::rearm_threshold() {
  auto& upc = node_.upc();
  // Re-arm by rewriting the threshold register over the MMIO path, exactly
  // as an interrupt service routine on the real unit would; the new
  // threshold is strictly above the current count, so the write itself
  // never re-fires.
  upc.mmio_write64(
      upc.mmio_base() + upc::UpcUnit::kThresholdOffset + 8ull * pacer_counter_,
      pacer_origin_ + (intervals_closed_ + 1) * config_.interval_cycles);
}

unsigned Sampler::advance_to(cycles_t rel_now) {
  const u64 closed = rel_now / config_.interval_cycles;
  if (closed <= intervals_closed_) return 0;
  in_advance_ = true;
  std::vector<u64> now_values = snapshot_counters();
  IntervalRecord rec;
  rec.index = intervals_closed_;
  rec.spanned = static_cast<u32>(closed - intervals_closed_);
  rec.t_begin = intervals_closed_ * config_.interval_cycles;
  rec.t_end = closed * config_.interval_cycles;
  rec.values.resize(now_values.size());
  for (std::size_t i = 0; i < now_values.size(); ++i) {
    rec.values[i] = now_values[i] - last_snapshot_[i];
  }
  last_snapshot_ = std::move(now_values);
  intervals_closed_ = closed;
  buffer_.push(std::move(rec));
  ++samples_;
  overhead_cycles_ += config_.per_sample_overhead;
  pending_overhead_ += config_.per_sample_overhead;
  if (interrupt_driven_) rearm_threshold();
  in_advance_ = false;
  return 1;
}

}  // namespace bgp::trace
