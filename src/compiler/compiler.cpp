#include "compiler/compiler.hpp"

#include <cmath>

namespace bgp::opt {
namespace {

using isa::FpOp;
using isa::IntOp;
using isa::LsOp;

/// Integer-overhead multiplier per level (strength reduction, scheduling,
/// induction variable cleanup).
double int_factor(const OptConfig& c) {
  switch (c.level) {
    case OptLevel::kO: return 1.0;
    case OptLevel::kO3: return 0.80;
    case OptLevel::kO4: return 0.70;
    case OptLevel::kO5: return 0.62;
  }
  return 1.0;
}

/// Unroll factor per level: divides the per-iteration branch.
unsigned unroll_factor(const OptConfig& c) {
  switch (c.level) {
    case OptLevel::kO: return 1;
    case OptLevel::kO3: return 4;
    case OptLevel::kO4: return 8;
    case OptLevel::kO5: return 8;
  }
  return 1;
}

u64 scale(u64 v, double f) {
  return static_cast<u64>(std::llround(static_cast<double>(v) * f));
}

/// Move `pairs*2` scalar ops of `from` into `pairs` SIMD ops of `to`.
void pair_ops(isa::OpMix& mix, FpOp from, FpOp to, double fraction) {
  const u64 n = mix.fp_at(from);
  const u64 pairs = scale(n, fraction) / 2;
  mix.fp_at(from) = n - pairs * 2;
  mix.fp_at(to) += pairs;
}

void pair_ls(isa::OpMix& mix, LsOp from, LsOp to, double fraction) {
  const u64 n = mix.ls_at(from);
  const u64 pairs = scale(n, fraction) / 2;
  mix.ls_at(from) = n - pairs * 2;
  mix.ls_at(to) += pairs;
}

}  // namespace

double Compiler::simd_efficiency() const noexcept {
  if (!config_.qarch440d) return 0.0;
  switch (config_.level) {
    case OptLevel::kO: return 0.0;  // SIMDizer needs -O3+ infrastructure
    case OptLevel::kO3: return 0.70;
    case OptLevel::kO4: return 0.85;
    case OptLevel::kO5: return 1.00;
  }
  return 0.0;
}

CompiledLoop Compiler::compile(const isa::LoopDesc& loop) const {
  // Work on whole-invocation totals: unrolling lets the backend pair ops
  // and amortize branches *across* iterations, so per-iteration rounding
  // would be wrong for small bodies.
  isa::OpMix total = loop.body.scaled(loop.trip);

  // ---- integer / control overhead ----------------------------------------
  total.int_at(IntOp::kAlu) =
      scale(total.int_at(IntOp::kAlu), int_factor(config_));
  total.int_at(IntOp::kMul) =
      scale(total.int_at(IntOp::kMul), int_factor(config_));

  // Unrolling: amortize the loop branches over the unroll factor.
  const unsigned uf = unroll_factor(config_);
  const u64 branches = total.int_at(IntOp::kBranch);
  total.int_at(IntOp::kBranch) = (branches + uf - 1) / uf;

  // IPA inlines calls out of hot loops; without it they stay. The inlined
  // body's work is already declared in the mix; only the call overhead
  // disappears.
  if (config_.ipa()) {
    total.int_at(IntOp::kCall) = 0;
  }

  // ---- SIMDization (-qarch440d) ------------------------------------------
  const double eff = simd_efficiency();
  if (eff > 0.0) {
    // Reductions vectorize with a small penalty (final combine, interleaved
    // partial sums).
    const double frac =
        loop.vectorizable * (loop.reduction ? 0.9 : 1.0) * eff;
    if (frac > 0.0) {
      pair_ops(total, FpOp::kAddSub, FpOp::kSimdAddSub, frac);
      pair_ops(total, FpOp::kMult, FpOp::kSimdMult, frac);
      pair_ops(total, FpOp::kFma, FpOp::kSimdFma, frac);
      // Divides are not SIMDized by the 440d backend.
      pair_ls(total, LsOp::kLoadDouble, LsOp::kLoadQuad, frac);
      if (!loop.reduction) {
        pair_ls(total, LsOp::kStoreDouble, LsOp::kStoreQuad, frac);
      }
    }
  }

  // ---- memory overlap ------------------------------------------------------
  double overlap = 1.0;
  switch (loop.locality) {
    case isa::LocalityClass::kStreaming: overlap = 3.0; break;
    case isa::LocalityClass::kBlocked: overlap = 2.0; break;
    case isa::LocalityClass::kRandom: overlap = 1.2; break;
  }
  if (config_.qhot() && loop.locality != isa::LocalityClass::kRandom) {
    // -qhot restructures loops for locality and software prefetch.
    overlap *= 1.5;
  }
  if (config_.qarch440d && eff > 0.0) {
    // Quadword accesses halve the number of outstanding requests needed to
    // cover the same bandwidth.
    overlap *= 1.0 + 0.25 * loop.vectorizable;
  }

  CompiledLoop out;
  out.name = loop.name;
  out.ops = total;
  out.mem_overlap = overlap;

  // Precompute the block event vector: exactly the events (and order) the
  // per-class execute path would signal, zero counts skipped, with core-0
  // ids for rebasing at apply time.
  out.events.reserve(isa::kNumFpOps + isa::kNumLsOps + isa::kNumIntOps + 1);
  for (std::size_t i = 0; i < isa::kNumFpOps; ++i) {
    if (total.fp[i] != 0) {
      out.events.push_back({isa::ev::fpu_op(0, static_cast<FpOp>(i)),
                            total.fp[i]});
    }
  }
  for (std::size_t i = 0; i < isa::kNumLsOps; ++i) {
    if (total.ls[i] != 0) {
      out.events.push_back({isa::ev::ls_op(0, static_cast<LsOp>(i)),
                            total.ls[i]});
    }
  }
  for (std::size_t i = 0; i < isa::kNumIntOps; ++i) {
    if (total.in[i] != 0) {
      out.events.push_back({isa::ev::int_op(0, static_cast<IntOp>(i)),
                            total.in[i]});
    }
  }
  if (const u64 instr = total.total_instructions(); instr != 0) {
    out.events.push_back({isa::ev::instr_completed(0), instr});
  }
  return out;
}

}  // namespace bgp::opt
