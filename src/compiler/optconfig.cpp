#include "compiler/optconfig.hpp"

#include <sstream>
#include <stdexcept>

namespace bgp::opt {

std::string_view to_string(OptLevel level) noexcept {
  switch (level) {
    case OptLevel::kO: return "-O";
    case OptLevel::kO3: return "-O3";
    case OptLevel::kO4: return "-O4";
    case OptLevel::kO5: return "-O5";
  }
  return "?";
}

std::string OptConfig::name() const {
  std::string n{to_string(level)};
  if (qstrict) n += " -qstrict";
  if (qarch440d) n += " -qarch440d";
  return n;
}

OptConfig OptConfig::parse(std::string_view flags) {
  OptConfig cfg;
  std::istringstream in{std::string(flags)};
  std::string tok;
  bool level_seen = false;
  while (in >> tok) {
    if (tok == "-O" || tok == "-O2") {
      cfg.level = OptLevel::kO;
      level_seen = true;
    } else if (tok == "-O3") {
      cfg.level = OptLevel::kO3;
      level_seen = true;
    } else if (tok == "-O4") {
      cfg.level = OptLevel::kO4;
      level_seen = true;
    } else if (tok == "-O5") {
      cfg.level = OptLevel::kO5;
      level_seen = true;
    } else if (tok == "-qstrict") {
      cfg.qstrict = true;
    } else if (tok == "-qarch440d" || tok == "-qarch=440d") {
      cfg.qarch440d = true;
    } else if (tok == "-qhot" || tok == "-qtune" || tok == "-qcache" ||
               tok == "-qtune=440" || tok == "-qcache=auto") {
      // Accepted; subsumed by the level model (implied at -O4+).
    } else {
      throw std::invalid_argument("unknown compiler flag: " + tok);
    }
  }
  if (!level_seen) {
    throw std::invalid_argument("no optimization level in: " +
                                std::string(flags));
  }
  return cfg;
}

const std::vector<OptConfig>& OptConfig::paper_set() {
  static const std::vector<OptConfig> set = {
      parse("-O -qstrict"),        parse("-O3"),
      parse("-O3 -qarch440d"),     parse("-O4"),
      parse("-O4 -qarch440d"),     parse("-O5"),
      parse("-O5 -qarch440d"),
  };
  return set;
}

}  // namespace bgp::opt
