// IBM XL compiler option sets studied by the paper (§VI): -O with -qstrict,
// -O3, -O4 and -O5, each optionally with -qarch=440d which turns on
// SIMDization for the double-hummer FPU. -O4 implies -qtune/-qcache/-qhot;
// -O5 adds inter-procedural analysis.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace bgp::opt {

enum class OptLevel : u8 {
  kO = 0,  ///< "-O": default optimization (CSE, code motion, DCE, ...)
  kO3,     ///< + strength reduction, aggressive motion & scheduling
  kO4,     ///< + -qarch -qtune -qcache -qhot
  kO5,     ///< + inter-procedural analysis
};

[[nodiscard]] std::string_view to_string(OptLevel level) noexcept;

struct OptConfig {
  OptLevel level = OptLevel::kO;
  /// Optimizations must preserve exact semantics (paper pairs it with -O).
  bool qstrict = false;
  /// -qarch=440d: emit double-hummer SIMD instructions and quad load/stores.
  bool qarch440d = false;

  /// -qhot loop transformations are implied by -O4 and above.
  [[nodiscard]] bool qhot() const noexcept { return level >= OptLevel::kO4; }
  /// Inter-procedural analysis at -O5.
  [[nodiscard]] bool ipa() const noexcept { return level >= OptLevel::kO5; }

  /// Display name, e.g. "-O5 -qarch440d".
  [[nodiscard]] std::string name() const;

  /// Parse a flag string such as "-O3 -qarch440d" or "-O -qstrict".
  [[nodiscard]] static OptConfig parse(std::string_view flags);

  /// The seven option sets of the paper's Figures 7-10, in paper order:
  /// -O -qstrict, -O3, -O3+440d, -O4, -O4+440d, -O5, -O5+440d.
  [[nodiscard]] static const std::vector<OptConfig>& paper_set();

  bool operator==(const OptConfig&) const = default;
};

}  // namespace bgp::opt
