// The optimization pipeline: lowers a source-level LoopDesc to the machine
// op bundle the selected XL option set would emit. Each pass mirrors the
// paper's description of the flags (§VI):
//
//   baseline "-O"     CSE/code motion/DCE already applied; loop overhead
//                     (induction arithmetic, branches) is unreduced.
//   -O3               strength reduction + scheduling: fewer integer ops,
//                     4x unrolling (fewer branches).
//   -O4 (+qhot etc.)  deeper unrolling, hot-loop transforms that improve
//                     spatial locality / prefetchability (higher overlap).
//   -O5 (IPA)         inlines calls out of hot loops, more integer cleanup.
//   -qarch=440d       SIMDizes the vectorizable fraction of the FP work:
//                     pairs add-sub/mult/FMA into SIMD forms and pairs
//                     double loads/stores into quadword accesses. The
//                     SIMDizable fraction it can actually exploit grows
//                     with the optimization level (better dependence and
//                     alias analysis at -O4/-O5).
#pragma once

#include "compiler/optconfig.hpp"
#include "isa/loop.hpp"

namespace bgp::opt {

/// A loop lowered to machine operations for one whole invocation.
struct CompiledLoop {
  std::string_view name;
  /// Total machine op counts (per-iteration mix scaled by trip count).
  isa::OpMix ops;
  /// Memory-level-parallelism factor for this loop's traffic: the cache
  /// walk's raw latency is divided by this before being charged as stall.
  double mem_overlap = 1.0;
};

class Compiler {
 public:
  explicit Compiler(const OptConfig& config) noexcept : config_(config) {}

  [[nodiscard]] const OptConfig& config() const noexcept { return config_; }

  /// Lower one loop nest under the active option set.
  [[nodiscard]] CompiledLoop compile(const isa::LoopDesc& loop) const;

  /// Fraction of the declared vectorizable work the SIMDizer exploits at
  /// each level (0 when -qarch440d is off or level is -O).
  [[nodiscard]] double simd_efficiency() const noexcept;

 private:
  OptConfig config_;
};

}  // namespace bgp::opt
