// The optimization pipeline: lowers a source-level LoopDesc to the machine
// op bundle the selected XL option set would emit. Each pass mirrors the
// paper's description of the flags (§VI):
//
//   baseline "-O"     CSE/code motion/DCE already applied; loop overhead
//                     (induction arithmetic, branches) is unreduced.
//   -O3               strength reduction + scheduling: fewer integer ops,
//                     4x unrolling (fewer branches).
//   -O4 (+qhot etc.)  deeper unrolling, hot-loop transforms that improve
//                     spatial locality / prefetchability (higher overlap).
//   -O5 (IPA)         inlines calls out of hot loops, more integer cleanup.
//   -qarch=440d       SIMDizes the vectorizable fraction of the FP work:
//                     pairs add-sub/mult/FMA into SIMD forms and pairs
//                     double loads/stores into quadword accesses. The
//                     SIMDizable fraction it can actually exploit grows
//                     with the optimization level (better dependence and
//                     alias analysis at -O4/-O5).
#pragma once

#include <array>
#include <vector>

#include "compiler/optconfig.hpp"
#include "isa/events.hpp"
#include "isa/loop.hpp"

namespace bgp::opt {

/// A loop lowered to machine operations for one whole invocation.
struct CompiledLoop {
  std::string_view name;
  /// Total machine op counts (per-iteration mix scaled by trip count).
  isa::OpMix ops;
  /// Memory-level-parallelism factor for this loop's traffic: the cache
  /// walk's raw latency is divided by this before being charged as stall.
  double mem_overlap = 1.0;
  /// Precomputed block event vector: the nonzero per-class instruction
  /// events of one invocation (FPU/LS/integer classes + INSTR_COMPLETED),
  /// as *core-0* mode-0 ids in legacy signaling order. The compiler only
  /// knows the ISA, so this is the canonical compile artifact; the
  /// delivery-ready per-core variants below are derived from it.
  std::vector<isa::EventCount> events;
  /// Delivery-ready batches, one per core: `events` rebased onto core c's
  /// mode-0 slice with the bundle's CYCLE_COUNT appended last (matching
  /// the legacy emit order). Filled by Machine::compile_cached — computing
  /// the cycle entry needs the CPU timing model, which the compiler layer
  /// deliberately does not link — and left empty by Compiler::compile().
  /// Cached per machine, so Core::execute_block hands the span straight
  /// to the event sink with zero per-call copying or rebasing.
  std::array<std::vector<isa::EventCount>, isa::kCoresPerNode> core_events;
};

class Compiler {
 public:
  explicit Compiler(const OptConfig& config) noexcept : config_(config) {}

  [[nodiscard]] const OptConfig& config() const noexcept { return config_; }

  /// Lower one loop nest under the active option set.
  [[nodiscard]] CompiledLoop compile(const isa::LoopDesc& loop) const;

  /// Fraction of the declared vectorizable work the SIMDizer exploits at
  /// each level (0 when -qarch440d is off or level is -O).
  [[nodiscard]] double simd_efficiency() const noexcept;

 private:
  OptConfig config_;
};

}  // namespace bgp::opt
