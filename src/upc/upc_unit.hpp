// Model of the Blue Gene/P Universal Performance Counter (UPC) unit
// (paper §III-A): 256 64-bit counters, four counter modes of 256 events
// each, per-counter configuration registers with the paper's 2-bit
// edge/level encodings and an interrupt-enable bit, memory-mapped access to
// all counters and configuration registers, and thresholding interrupts.
#pragma once

#include <array>
#include <functional>
#include <stdexcept>
#include <vector>

#include "isa/events.hpp"

namespace bgp::upc {

/// Counter-event signaling selection (paper §III-A encoding):
///   00 LEVEL_HIGH, 01 EDGE_RISE, 10 EDGE_FALL, 11 LEVEL_LOW.
enum class SignalMode : u8 {
  kLevelHigh = 0b00,  ///< BGP_UPC_CFG_LEVEL_HIGH
  kEdgeRise = 0b01,   ///< BGP_UPC_CFG_EDGE_RISE
  kEdgeFall = 0b10,   ///< BGP_UPC_CFG_EDGE_FALL
  kLevelLow = 0b11,   ///< BGP_UPC_CFG_LEVEL_LOW
};

/// Per-counter configuration: the 4 configuration bits of the paper
/// (2 signal-mode bits + interrupt enable; the 4th bit arms the counter)
/// plus the 64-bit threshold register.
struct CounterConfig {
  SignalMode signal = SignalMode::kEdgeRise;
  bool interrupt_enable = false;
  bool enabled = true;
  u64 threshold = 0;

  /// Pack into the low bits of a configuration word:
  /// bits [1:0] signal mode, bit 2 interrupt enable, bit 3 counter enable.
  [[nodiscard]] u32 encode() const noexcept;
  [[nodiscard]] static CounterConfig decode(u32 word) noexcept;

  bool operator==(const CounterConfig&) const = default;
};

/// Raised on programming errors (bad counter index, bad MMIO address).
class UpcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One UPC unit (one per node).
///
/// Hardware units report activity via signal() / signal_level(); whether a
/// given report increments a physical counter depends on the unit's counter
/// mode, the counter's enable bit and its signal-mode configuration.
class UpcUnit {
 public:
  static constexpr unsigned kNumCounters = isa::kCountersPerUnit;

  /// MMIO map (offsets from mmio_base): counters are 64-bit at +8*i,
  /// config words 32-bit at +kConfigOffset+4*i, thresholds 64-bit at
  /// +kThresholdOffset+8*i.
  static constexpr addr_t kDefaultMmioBase = 0x7FFF'0000;
  static constexpr addr_t kConfigOffset = 0x1000;
  static constexpr addr_t kThresholdOffset = 0x2000;
  static constexpr addr_t kMmioSpan = 0x3000;

  using ThresholdHandler = std::function<void(u8 counter, u64 value)>;

  explicit UpcUnit(addr_t mmio_base = kDefaultMmioBase) noexcept;

  // -- mode / run control -----------------------------------------------
  /// Select which 256-event set the unit counts. Resets nothing.
  void set_mode(u8 mode);
  [[nodiscard]] u8 mode() const noexcept { return mode_; }

  void start() noexcept { running_ = true; }
  void stop() noexcept { running_ = false; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Zero all counters (configuration is preserved).
  void reset_counters() noexcept;
  /// Restore all configuration registers to power-on defaults.
  void reset_config() noexcept;

  // -- configuration ------------------------------------------------------
  void configure(u8 counter, const CounterConfig& cfg);
  [[nodiscard]] const CounterConfig& config(u8 counter) const;

  /// Interrupt delivery for thresholding (paper: "raising an interrupt when
  /// specific counters reach corresponding thresholds").
  void set_threshold_handler(ThresholdHandler handler) {
    threshold_handler_ = std::move(handler);
  }
  /// Additional interrupt subscribers (the sampling layer taps the same
  /// line without displacing the user's handler). Listeners fire after the
  /// handler, in registration order, and persist for the unit's lifetime.
  void add_threshold_listener(ThresholdHandler listener) {
    threshold_listeners_.push_back(std::move(listener));
  }
  [[nodiscard]] u64 threshold_interrupts() const noexcept {
    return threshold_interrupts_;
  }

  // -- event input from hardware units -------------------------------------
  /// Report `count` edge events for `id`. Counted iff the unit is running,
  /// set to the event's mode, the counter is enabled and configured for an
  /// edge signal mode.
  void signal(isa::EventId id, u64 count = 1);

  /// Report a batch of edge events in one call; equivalent to signal()ing
  /// each entry in order (edge counting is sum-preserving), but the
  /// running check is hoisted out of the loop. The hot path of the block-
  /// batched event delivery.
  void signal_batch(const isa::EventCount* batch, std::size_t n);

  /// Report a level signal observation: the signal was high for
  /// `cycles_high` of a `window`-cycle observation window. LEVEL_HIGH
  /// configs accumulate cycles_high, LEVEL_LOW accumulate window−cycles_high,
  /// edge configs count one rising transition if the signal was ever high.
  void signal_level(isa::EventId id, u64 cycles_high, u64 window);

  // -- counter access -------------------------------------------------------
  [[nodiscard]] u64 read(u8 counter) const;
  void write(u8 counter, u64 value);

  /// Narrow a counter to `bits` wide (1..64): it wraps at 2^bits instead of
  /// 2^64. Models a defective/misconfigured counter for fault injection;
  /// reset_counters()/reset_config() do not undo it (the defect persists).
  void set_counter_width(u8 counter, unsigned bits);
  [[nodiscard]] u64 counter_mask(u8 counter) const;

  /// Snapshot of all 256 counters.
  [[nodiscard]] std::array<u64, kNumCounters> snapshot() const noexcept {
    return counters_;
  }

  // -- memory-mapped access -------------------------------------------------
  [[nodiscard]] addr_t mmio_base() const noexcept { return mmio_base_; }
  [[nodiscard]] bool owns_address(addr_t addr) const noexcept {
    return addr >= mmio_base_ && addr < mmio_base_ + kMmioSpan;
  }
  [[nodiscard]] u64 mmio_read64(addr_t addr) const;
  void mmio_write64(addr_t addr, u64 value);
  [[nodiscard]] u32 mmio_read32(addr_t addr) const;
  void mmio_write32(addr_t addr, u32 value);

 private:
  void bump(u8 counter, u64 amount);
  void fire_threshold(u8 counter);
  /// A threshold (re)write that lands at or below the current count raises
  /// the interrupt immediately unless the old configuration had already
  /// observed that crossing.
  void maybe_fire_on_arm(u8 counter, const CounterConfig& old_cfg);
  /// Recompute the per-counter fast-path flags below after any config or
  /// threshold write (cold; the writes all happen at set-up time).
  void refresh_derived() noexcept;
  [[nodiscard]] static u8 check_counter(unsigned counter);

  addr_t mmio_base_;
  u8 mode_ = 0;
  bool running_ = false;
  std::array<u64, kNumCounters> counters_{};
  std::array<u64, kNumCounters> masks_;  ///< per-counter width mask
  std::array<CounterConfig, kNumCounters> configs_{};
  /// Derived from configs_: counter is enabled with an edge signal mode,
  /// i.e. a signal()/signal_batch() report lands in it. Lets the batch
  /// fast path reduce a countable entry to one masked add.
  std::array<u8, kNumCounters> edge_countable_{};
  /// Counters whose config could fire a threshold interrupt
  /// (interrupt_enable with a nonzero threshold). Zero on every shipped
  /// configuration that does not arm thresholds, which unlocks the
  /// interrupt-free batch loop.
  unsigned armed_thresholds_ = 0;
  ThresholdHandler threshold_handler_;
  std::vector<ThresholdHandler> threshold_listeners_;
  u64 threshold_interrupts_ = 0;
};

}  // namespace bgp::upc
