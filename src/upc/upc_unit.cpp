#include "upc/upc_unit.hpp"

#include "common/strfmt.hpp"

namespace bgp::upc {

u32 CounterConfig::encode() const noexcept {
  u32 w = static_cast<u32>(signal) & 0b11u;
  if (interrupt_enable) w |= 1u << 2;
  if (enabled) w |= 1u << 3;
  return w;
}

CounterConfig CounterConfig::decode(u32 word) noexcept {
  CounterConfig cfg;
  cfg.signal = static_cast<SignalMode>(word & 0b11u);
  cfg.interrupt_enable = (word >> 2) & 1u;
  cfg.enabled = (word >> 3) & 1u;
  return cfg;
}

UpcUnit::UpcUnit(addr_t mmio_base) noexcept : mmio_base_(mmio_base) {
  masks_.fill(~u64{0});
}

void UpcUnit::set_counter_width(u8 counter, unsigned bits) {
  if (bits == 0 || bits > 64) {
    throw UpcError(strfmt("invalid counter width %u", bits));
  }
  const u64 mask = bits == 64 ? ~u64{0} : (u64{1} << bits) - 1;
  const u8 c = check_counter(counter);
  masks_[c] = mask;
  counters_[c] &= mask;
}

u64 UpcUnit::counter_mask(u8 counter) const {
  return masks_[check_counter(counter)];
}

void UpcUnit::set_mode(u8 mode) {
  if (mode >= isa::kNumCounterModes) {
    throw UpcError(strfmt("invalid counter mode %u", mode));
  }
  mode_ = mode;
}

void UpcUnit::reset_counters() noexcept { counters_.fill(0); }

void UpcUnit::reset_config() noexcept {
  configs_.fill(CounterConfig{});
  refresh_derived();
}

void UpcUnit::refresh_derived() noexcept {
  armed_thresholds_ = 0;
  for (unsigned c = 0; c < kNumCounters; ++c) {
    const CounterConfig& cfg = configs_[c];
    edge_countable_[c] = cfg.enabled && (cfg.signal == SignalMode::kEdgeRise ||
                                         cfg.signal == SignalMode::kEdgeFall);
    if (cfg.interrupt_enable && cfg.threshold != 0) ++armed_thresholds_;
  }
}

u8 UpcUnit::check_counter(unsigned counter) {
  if (counter >= kNumCounters) {
    throw UpcError(strfmt("counter index %u out of range", counter));
  }
  return static_cast<u8>(counter);
}

void UpcUnit::configure(u8 counter, const CounterConfig& cfg) {
  const u8 c = check_counter(counter);
  const CounterConfig old = configs_[c];
  configs_[c] = cfg;
  refresh_derived();
  maybe_fire_on_arm(c, old);
}

const CounterConfig& UpcUnit::config(u8 counter) const {
  return configs_[check_counter(counter)];
}

void UpcUnit::fire_threshold(u8 counter) {
  ++threshold_interrupts_;
  if (threshold_handler_) {
    threshold_handler_(counter, counters_[counter]);
  }
  // Handlers may reconfigure the counter (re-arming writes a new
  // threshold), so iterate by index: a listener registered mid-delivery is
  // not called for this interrupt.
  const std::size_t n = threshold_listeners_.size();
  for (std::size_t i = 0; i < n; ++i) {
    threshold_listeners_[i](counter, counters_[counter]);
  }
}

void UpcUnit::maybe_fire_on_arm(u8 counter, const CounterConfig& old_cfg) {
  const CounterConfig& cfg = configs_[counter];
  if (!cfg.interrupt_enable || !cfg.enabled || cfg.threshold == 0) return;
  if (counters_[counter] < cfg.threshold) return;
  // Already past the old threshold with interrupts on: that crossing was
  // delivered when it happened; re-writing the registers must not repeat it.
  const bool old_observed = old_cfg.interrupt_enable && old_cfg.enabled &&
                            old_cfg.threshold != 0 &&
                            counters_[counter] >= old_cfg.threshold;
  if (old_observed) return;
  fire_threshold(counter);
}

void UpcUnit::bump(u8 counter, u64 amount) {
  if (amount == 0) return;
  const CounterConfig& cfg = configs_[counter];
  const u64 before = counters_[counter];
  // Full-width counters wrap (benignly) at 2^64; a narrowed counter wraps
  // at its injected width and the loss is visible to the dump consumers.
  counters_[counter] = (before + amount) & masks_[counter];
  // Crossing detection uses the unwrapped sum: an increment that carries a
  // narrowed counter across its threshold AND past its wrap point must
  // still raise the interrupt (the crossing physically happened), while a
  // wrap that starts above the threshold must not re-raise it.
  if (cfg.interrupt_enable && cfg.threshold != 0 && before < cfg.threshold &&
      before + amount >= cfg.threshold) {
    fire_threshold(counter);
  }
}

void UpcUnit::signal(isa::EventId id, u64 count) {
  if (!running_ || isa::event_mode(id) != mode_) return;
  const u8 counter = isa::event_counter(id);
  const CounterConfig& cfg = configs_[counter];
  if (!cfg.enabled) return;
  if (cfg.signal != SignalMode::kEdgeRise &&
      cfg.signal != SignalMode::kEdgeFall) {
    return;  // level-configured counters ignore edge reports
  }
  bump(counter, count);
}

void UpcUnit::signal_batch(const isa::EventCount* batch, std::size_t n) {
  if (!running_) return;
  const u16 lo = static_cast<u16>(mode_) * isa::kCountersPerUnit;
  if (armed_thresholds_ == 0) {
    // No configured counter can fire a threshold interrupt, so a countable
    // entry reduces to one masked add (counters are kept masked by every
    // writer, so re-masking an unchanged value is a no-op). This is the
    // steady-state loop: shipped samplers arm thresholds rarely or never.
    // restrict-qualified pointers tell the compiler the counter stores
    // cannot alias the batch, so it need not reload batch[i] after every
    // store — without them the loop serializes on the aliasing check.
    const isa::EventCount* __restrict__ b = batch;
    u64* __restrict__ ctr = counters_.data();
    const u64* __restrict__ msk = masks_.data();
    const u8* __restrict__ countable = edge_countable_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const u16 rel = static_cast<u16>(b[i].id - lo);
      if (rel >= isa::kCountersPerUnit) continue;  // other mode's event
      const u8 counter = static_cast<u8>(rel);
      if (!countable[counter]) continue;
      ctr[counter] = (ctr[counter] + b[i].count) & msk[counter];
    }
    return;
  }
  const u16 hi = static_cast<u16>(lo + isa::kCountersPerUnit);
  for (std::size_t i = 0; i < n; ++i) {
    const isa::EventId id = batch[i].id;
    if (id < lo || id >= hi) continue;
    const u8 counter = static_cast<u8>(id - lo);
    const CounterConfig& cfg = configs_[counter];
    if (!cfg.enabled) continue;
    if (cfg.signal != SignalMode::kEdgeRise &&
        cfg.signal != SignalMode::kEdgeFall) {
      continue;
    }
    bump(counter, batch[i].count);
  }
}

void UpcUnit::signal_level(isa::EventId id, u64 cycles_high, u64 window) {
  if (!running_ || isa::event_mode(id) != mode_) return;
  if (cycles_high > window) cycles_high = window;
  const u8 counter = isa::event_counter(id);
  const CounterConfig& cfg = configs_[counter];
  if (!cfg.enabled) return;
  switch (cfg.signal) {
    case SignalMode::kLevelHigh:
      bump(counter, cycles_high);
      break;
    case SignalMode::kLevelLow:
      bump(counter, window - cycles_high);
      break;
    case SignalMode::kEdgeRise:
    case SignalMode::kEdgeFall:
      // An observation window in which the signal was ever asserted
      // contributes one transition.
      if (cycles_high > 0) bump(counter, 1);
      break;
  }
}

u64 UpcUnit::read(u8 counter) const { return counters_[check_counter(counter)]; }

void UpcUnit::write(u8 counter, u64 value) {
  const u8 c = check_counter(counter);
  counters_[c] = value & masks_[c];
}

u64 UpcUnit::mmio_read64(addr_t addr) const {
  if (!owns_address(addr)) throw UpcError("MMIO read outside UPC window");
  const addr_t off = addr - mmio_base_;
  if (off < kConfigOffset) {
    if (off % 8 != 0) throw UpcError("unaligned counter MMIO read");
    return read(check_counter(static_cast<unsigned>(off / 8)));
  }
  if (off >= kThresholdOffset) {
    const addr_t toff = off - kThresholdOffset;
    if (toff % 8 != 0) throw UpcError("unaligned threshold MMIO read");
    return configs_[check_counter(static_cast<unsigned>(toff / 8))].threshold;
  }
  throw UpcError("64-bit MMIO read in 32-bit config region");
}

void UpcUnit::mmio_write64(addr_t addr, u64 value) {
  if (!owns_address(addr)) throw UpcError("MMIO write outside UPC window");
  const addr_t off = addr - mmio_base_;
  if (off < kConfigOffset) {
    if (off % 8 != 0) throw UpcError("unaligned counter MMIO write");
    write(check_counter(static_cast<unsigned>(off / 8)), value);
    return;
  }
  if (off >= kThresholdOffset) {
    const addr_t toff = off - kThresholdOffset;
    if (toff % 8 != 0) throw UpcError("unaligned threshold MMIO write");
    const u8 counter = check_counter(static_cast<unsigned>(toff / 8));
    const CounterConfig old = configs_[counter];
    configs_[counter].threshold = value;
    refresh_derived();
    maybe_fire_on_arm(counter, old);
    return;
  }
  throw UpcError("64-bit MMIO write in 32-bit config region");
}

u32 UpcUnit::mmio_read32(addr_t addr) const {
  if (!owns_address(addr)) throw UpcError("MMIO read outside UPC window");
  const addr_t off = addr - mmio_base_;
  if (off < kConfigOffset || off >= kThresholdOffset) {
    throw UpcError("32-bit MMIO access is only defined for config registers");
  }
  const addr_t coff = off - kConfigOffset;
  if (coff % 4 != 0) throw UpcError("unaligned config MMIO read");
  return configs_[check_counter(static_cast<unsigned>(coff / 4))].encode();
}

void UpcUnit::mmio_write32(addr_t addr, u32 value) {
  if (!owns_address(addr)) throw UpcError("MMIO write outside UPC window");
  const addr_t off = addr - mmio_base_;
  if (off < kConfigOffset || off >= kThresholdOffset) {
    throw UpcError("32-bit MMIO access is only defined for config registers");
  }
  const addr_t coff = off - kConfigOffset;
  if (coff % 4 != 0) throw UpcError("unaligned config MMIO write");
  const u8 counter = check_counter(static_cast<unsigned>(coff / 4));
  const CounterConfig old = configs_[counter];
  configs_[counter] = CounterConfig::decode(value);
  configs_[counter].threshold = old.threshold;  // set via threshold registers
  refresh_derived();
  maybe_fire_on_arm(counter, old);
}

}  // namespace bgp::upc
