#include "net/collective.hpp"

#include <bit>
#include <cmath>

#include "obs/obs.hpp"

namespace bgp::net {

namespace ev = isa::ev;

CollectiveNet::CollectiveNet(unsigned nodes, const CollectiveParams& params)
    : params_(params), sinks_(nodes, nullptr) {}

unsigned CollectiveNet::depth() const noexcept { return depth_for(nodes()); }

unsigned CollectiveNet::depth_for(unsigned live) noexcept {
  if (live <= 1) return 0;
  return static_cast<unsigned>(std::bit_width(live - 1));  // ceil(log2)
}

cycles_t CollectiveNet::op_cycles(u64 bytes) const {
  return op_cycles_live(bytes, nodes());
}

cycles_t CollectiveNet::op_cycles_live(u64 bytes, unsigned live) const {
  const auto serialization = static_cast<cycles_t>(
      std::llround(static_cast<double>(bytes) / params_.bytes_per_cycle));
  return params_.sw_overhead +
         cycles_t{depth_for(live)} * params_.level_latency + serialization;
}

void CollectiveNet::attach_sink(unsigned node, mem::EventSink* sink) {
  sinks_.at(node) = sink;
}

void CollectiveNet::record_operation(u64 bytes, cycles_t latency) {
  if (auto* fr = obs::recorder()) {
    fr->wk().coll_ops->add(1);
    fr->wk().coll_bytes->add(bytes);
  }
  const u64 chunks32 = (bytes + 31) / 32;
  for (mem::EventSink* s : sinks_) {
    if (s == nullptr) continue;
    mem::emit(s, ev::collective(isa::CollectiveEvent::kOperations), 1);
    mem::emit(s, ev::collective(isa::CollectiveEvent::kBytes32B), chunks32);
    mem::emit(s, ev::collective(isa::CollectiveEvent::kLatencyCycles),
              latency);
  }
}

BarrierNet::BarrierNet(unsigned nodes, const BarrierParams& params)
    : nodes_(nodes), params_(params), sinks_(nodes, nullptr) {}

cycles_t BarrierNet::barrier_cycles() const noexcept {
  return barrier_cycles_live(nodes_);
}

cycles_t BarrierNet::barrier_cycles_live(unsigned live) const noexcept {
  if (live <= 1) return params_.base_latency;
  const auto levels = static_cast<cycles_t>(std::bit_width(live - 1));
  return params_.base_latency + levels * params_.per_level_latency;
}

void BarrierNet::attach_sink(unsigned node, mem::EventSink* sink) {
  sinks_.at(node) = sink;
}

void BarrierNet::record_barrier(cycles_t wait_cycles_total) {
  if (auto* fr = obs::recorder()) {
    fr->wk().barrier_entries->add(1);
  }
  const u64 per_node =
      sinks_.empty() ? 0 : wait_cycles_total / sinks_.size();
  for (mem::EventSink* s : sinks_) {
    if (s == nullptr) continue;
    mem::emit(s, ev::barrier(isa::BarrierEvent::kEntries), 1);
    mem::emit(s, ev::barrier(isa::BarrierEvent::kWaitCycles), per_node);
  }
}

}  // namespace bgp::net
