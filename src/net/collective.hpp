// The BG/P collective (tree) network and the global barrier/interrupt
// network. The tree supports broadcast and integer/floating reductions in
// the network; latency grows with tree depth, bandwidth is fixed
// (~6.8 Gb/s). The barrier network delivers a global notification in under
// a microsecond.
#pragma once

#include <vector>

#include "mem/sink.hpp"

namespace bgp::net {

struct CollectiveParams {
  /// Per-tree-level latency in core cycles.
  cycles_t level_latency = 120;
  /// Payload bandwidth through the tree in bytes per core cycle
  /// (6.8 Gb/s at 850 MHz = 1 B/cycle).
  double bytes_per_cycle = 1.0;
  /// Combine/forward fixed software overhead per operation.
  cycles_t sw_overhead = 400;
};

class CollectiveNet {
 public:
  explicit CollectiveNet(unsigned nodes, const CollectiveParams& params = {});

  [[nodiscard]] unsigned nodes() const noexcept {
    return static_cast<unsigned>(sinks_.size());
  }
  [[nodiscard]] const CollectiveParams& params() const noexcept {
    return params_;
  }

  /// Tree depth for the attached node count.
  [[nodiscard]] unsigned depth() const noexcept;
  /// Tree depth when the spanning tree is re-routed over `live` nodes
  /// (after failures/shrink, the dead subtrees are pruned).
  [[nodiscard]] static unsigned depth_for(unsigned live) noexcept;

  /// Completion time of a broadcast/reduction of `bytes`, measured from the
  /// moment the last participant enters.
  [[nodiscard]] cycles_t op_cycles(u64 bytes) const;
  /// Same, over a tree pruned to `live` nodes. Equals op_cycles(bytes)
  /// when live == nodes().
  [[nodiscard]] cycles_t op_cycles_live(u64 bytes, unsigned live) const;

  void attach_sink(unsigned node, mem::EventSink* sink);

  /// Account one collective of `bytes` on every participating node.
  void record_operation(u64 bytes, cycles_t latency);

 private:
  CollectiveParams params_;
  std::vector<mem::EventSink*> sinks_;
};

struct BarrierParams {
  /// Base latency of the global-interrupt network plus a per-doubling term.
  cycles_t base_latency = 300;
  cycles_t per_level_latency = 40;
};

class BarrierNet {
 public:
  explicit BarrierNet(unsigned nodes, const BarrierParams& params = {});

  [[nodiscard]] cycles_t barrier_cycles() const noexcept;
  /// Barrier latency when only `live` nodes participate (FT mode after a
  /// shrink). Equals barrier_cycles() when live == the attached count.
  [[nodiscard]] cycles_t barrier_cycles_live(unsigned live) const noexcept;

  void attach_sink(unsigned node, mem::EventSink* sink);
  /// Account one barrier entry per node plus the measured wait per node.
  void record_barrier(cycles_t wait_cycles_total);

 private:
  unsigned nodes_;
  BarrierParams params_;
  std::vector<mem::EventSink*> sinks_;
};

}  // namespace bgp::net
