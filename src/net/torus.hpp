// The main BG/P data network: a 3D torus with dimension-order routing,
// nearest-neighbour links and wrap-around (paper §III). The model provides
// hop counts, transfer-time estimates for the MiniMPI point-to-point path
// and per-node UPC event emission (mode 2 counters).
#pragma once

#include <array>
#include <vector>

#include "mem/sink.hpp"

namespace bgp::net {

/// Torus dimensions.
struct Shape {
  unsigned x = 1, y = 1, z = 1;

  [[nodiscard]] unsigned nodes() const noexcept { return x * y * z; }
  bool operator==(const Shape&) const = default;

  /// Near-cubic factorization for `n` nodes (largest dims first).
  [[nodiscard]] static Shape for_nodes(unsigned n);
};

/// Coordinates of a node on the torus.
struct Coord {
  unsigned x = 0, y = 0, z = 0;
  bool operator==(const Coord&) const = default;
};

struct TorusParams {
  /// Per-hop router latency in core cycles (~75 ns on BG/P hardware).
  cycles_t hop_latency = 64;
  /// Per-direction link bandwidth in bytes per core cycle
  /// (425 MB/s at 850 MHz = 0.5 B/cycle).
  double link_bytes_per_cycle = 0.5;
  /// Torus packet payload granularity.
  u32 packet_bytes = 256;
  /// Software send/receive overhead charged to each endpoint.
  cycles_t sw_overhead = 600;
};

class Torus {
 public:
  Torus(Shape shape, const TorusParams& params = {});

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] const TorusParams& params() const noexcept { return params_; }

  [[nodiscard]] Coord coord_of(unsigned node) const;
  [[nodiscard]] unsigned node_of(const Coord& c) const;

  /// Shortest per-dimension distance with wrap-around.
  [[nodiscard]] unsigned hops(unsigned a, unsigned b) const;

  /// Time for a `bytes` message from `a` to `b` (hop latency + serialization
  /// on the narrowest link), excluding software overhead.
  [[nodiscard]] cycles_t transfer_cycles(unsigned a, unsigned b,
                                         u64 bytes) const;

  /// Attach the UPC sink of `node` (mode-2 events are emitted there).
  void attach_sink(unsigned node, mem::EventSink* sink);

  /// Account a message send on the counters of both endpoints.
  void record_transfer(unsigned src, unsigned dst, u64 bytes);

 private:
  /// +x/-x/+y/-y/+z/-z direction of the first hop (dimension-order).
  [[nodiscard]] unsigned first_hop_direction(unsigned src, unsigned dst) const;

  Shape shape_;
  TorusParams params_;
  std::vector<mem::EventSink*> sinks_;
};

}  // namespace bgp::net
