#include "net/torus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bgp::net {

namespace ev = isa::ev;

Shape Shape::for_nodes(unsigned n) {
  if (n == 0) throw std::invalid_argument("torus needs at least one node");
  // Search for the factorization x*y*z == n minimizing max dimension.
  Shape best{n, 1, 1};
  unsigned best_max = n;
  unsigned best_min = 1;
  for (unsigned x = 1; x <= n; ++x) {
    if (n % x != 0) continue;
    const unsigned yz = n / x;
    for (unsigned y = 1; y <= yz; ++y) {
      if (yz % y != 0) continue;
      const unsigned z = yz / y;
      const unsigned hi = std::max({x, y, z});
      const unsigned lo = std::min({x, y, z});
      // Prefer the smallest maximum dimension; tie-break on the largest
      // minimum (8x4x4 over 8x8x2 for 128 nodes).
      if (hi < best_max || (hi == best_max && lo > best_min)) {
        best = Shape{x, y, z};
        best_max = hi;
        best_min = lo;
      }
    }
  }
  // Canonical order: x >= y >= z.
  std::array<unsigned, 3> d{best.x, best.y, best.z};
  std::sort(d.begin(), d.end(), std::greater<>());
  return Shape{d[0], d[1], d[2]};
}

Torus::Torus(Shape shape, const TorusParams& params)
    : shape_(shape), params_(params), sinks_(shape.nodes(), nullptr) {}

Coord Torus::coord_of(unsigned node) const {
  if (node >= shape_.nodes()) throw std::out_of_range("node id");
  return Coord{node % shape_.x, (node / shape_.x) % shape_.y,
               node / (shape_.x * shape_.y)};
}

unsigned Torus::node_of(const Coord& c) const {
  if (c.x >= shape_.x || c.y >= shape_.y || c.z >= shape_.z) {
    throw std::out_of_range("torus coordinate");
  }
  return c.x + shape_.x * (c.y + shape_.y * c.z);
}

namespace {
unsigned ring_distance(unsigned a, unsigned b, unsigned dim) {
  const unsigned d = a > b ? a - b : b - a;
  return std::min(d, dim - d);
}
}  // namespace

unsigned Torus::hops(unsigned a, unsigned b) const {
  const Coord ca = coord_of(a), cb = coord_of(b);
  return ring_distance(ca.x, cb.x, shape_.x) +
         ring_distance(ca.y, cb.y, shape_.y) +
         ring_distance(ca.z, cb.z, shape_.z);
}

cycles_t Torus::transfer_cycles(unsigned a, unsigned b, u64 bytes) const {
  if (a == b) return 0;  // self-sends short-circuit in memory
  const unsigned h = hops(a, b);
  const auto serialization = static_cast<cycles_t>(std::llround(
      static_cast<double>(bytes) / params_.link_bytes_per_cycle));
  return cycles_t{h} * params_.hop_latency + serialization;
}

void Torus::attach_sink(unsigned node, mem::EventSink* sink) {
  sinks_.at(node) = sink;
}

unsigned Torus::first_hop_direction(unsigned src, unsigned dst) const {
  const Coord a = coord_of(src), b = coord_of(dst);
  auto dir = [](unsigned from, unsigned to, unsigned dim) -> int {
    if (from == to) return -1;
    const unsigned fwd = (to + dim - from) % dim;  // +direction distance
    return (fwd <= dim - fwd) ? 0 : 1;             // 0 = plus, 1 = minus
  };
  // Dimension-order: x first, then y, then z.
  if (int d = dir(a.x, b.x, shape_.x); d >= 0) return 0 + unsigned(d);
  if (int d = dir(a.y, b.y, shape_.y); d >= 0) return 2 + unsigned(d);
  if (int d = dir(a.z, b.z, shape_.z); d >= 0) return 4 + unsigned(d);
  return 0;
}

void Torus::record_transfer(unsigned src, unsigned dst, u64 bytes) {
  if (src == dst) return;
  const u64 packets =
      (bytes + params_.packet_bytes - 1) / params_.packet_bytes;
  const u64 chunks32 = (bytes + 31) / 32;
  if (mem::EventSink* s = sinks_.at(src)) {
    const unsigned dir = first_hop_direction(src, dst);
    const auto send_event = static_cast<isa::TorusEvent>(
        static_cast<unsigned>(isa::TorusEvent::kPacketsSentXp) + dir);
    mem::emit(s, ev::torus(send_event), packets);
    mem::emit(s, ev::torus(isa::TorusEvent::kBytesSent32B), chunks32);
    mem::emit(s, ev::torus(isa::TorusEvent::kHopsTotal),
              packets * hops(src, dst));
  }
  if (mem::EventSink* s = sinks_.at(dst)) {
    mem::emit(s, ev::torus(isa::TorusEvent::kPacketsReceived), packets);
    mem::emit(s, ev::torus(isa::TorusEvent::kBytesRecv32B), chunks32);
  }
}

}  // namespace bgp::net
