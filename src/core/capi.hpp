// C-flavoured facade mirroring the paper's function names exactly
// (BGP_Initialize / BGP_Start / BGP_Stop / BGP_Finalize operating on an
// ambient session, as application code on the real machine would call
// them). Bind a Session first; the runtime's single-token scheduling makes
// the ambient pointer safe.
#pragma once

#include "core/session.hpp"

namespace bgp::pc {

/// Bind/unbind the ambient session used by the free functions below.
void BGP_Bind(Session* session) noexcept;
[[nodiscard]] Session* BGP_Bound() noexcept;

void BGP_Initialize(rt::RankCtx& ctx);
void BGP_Start(rt::RankCtx& ctx, unsigned set = 0);
void BGP_Stop(rt::RankCtx& ctx, unsigned set = 0);
void BGP_Finalize(rt::RankCtx& ctx);

}  // namespace bgp::pc
