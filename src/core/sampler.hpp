// Time-series counter sampling. The paper (§I) highlights that the UPC's
// memory-mapped, globally accessible counters let "a single monitoring
// thread executing as part of a system service, or as part of an
// application" read them while the workload runs. Sampler models exactly
// that: it snapshots a set of counters every `interval` cycles of a rank's
// progress and accumulates a timeline that can be mined or dumped to CSV —
// the raw material for phase analysis and the dynamic feedback loops
// (data placement, thread assignment) the paper sketches.
#pragma once

#include <vector>

#include "common/csv.hpp"
#include "runtime/rankctx.hpp"
#include "sys/node.hpp"

namespace bgp::pc {

/// One snapshot of the watched counters.
struct Sample {
  cycles_t timestamp = 0;
  std::vector<u64> values;  ///< parallel to Sampler::events()
};

class Sampler {
 public:
  /// Watch `events` on `node`; the node's UPC mode must cover an event for
  /// its column to advance (others read the aliased physical counter, as
  /// on the real unit — pick events of the node's programmed mode).
  Sampler(sys::Node& node, std::vector<isa::EventId> events,
          cycles_t interval);

  [[nodiscard]] const std::vector<isa::EventId>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] cycles_t interval() const noexcept { return interval_; }

  /// Poll: if at least one interval elapsed since the last sample (by the
  /// node's Time Base), take snapshots at interval boundaries. Call this
  /// from instrumentation points; cheap when no sample is due. Returns the
  /// number of samples taken.
  unsigned poll();

  /// Unconditionally snapshot now.
  void sample_now();

  [[nodiscard]] const std::vector<Sample>& timeline() const noexcept {
    return timeline_;
  }

  /// Per-interval deltas between consecutive samples (length = samples-1).
  [[nodiscard]] std::vector<Sample> deltas() const;

  /// Emit the timeline (cumulative values) as CSV: one row per sample.
  void write_csv(CsvWriter& csv, bool as_deltas = false) const;

 private:
  sys::Node& node_;
  std::vector<isa::EventId> events_;
  cycles_t interval_;
  cycles_t next_due_;
  std::vector<Sample> timeline_;
};

}  // namespace bgp::pc
