#include "core/capi.hpp"

#include <stdexcept>

namespace bgp::pc {

namespace {
Session* g_session = nullptr;

Session& bound() {
  if (g_session == nullptr) {
    throw std::logic_error("no Session bound; call BGP_Bind first");
  }
  return *g_session;
}
}  // namespace

void BGP_Bind(Session* session) noexcept { g_session = session; }
Session* BGP_Bound() noexcept { return g_session; }

void BGP_Initialize(rt::RankCtx& ctx) { bound().BGP_Initialize(ctx); }
void BGP_Start(rt::RankCtx& ctx, unsigned set) { bound().BGP_Start(ctx, set); }
void BGP_Stop(rt::RankCtx& ctx, unsigned set) { bound().BGP_Stop(ctx, set); }
void BGP_Finalize(rt::RankCtx& ctx) { bound().BGP_Finalize(ctx); }

}  // namespace bgp::pc
