// The interface library (the paper's §IV contribution): four user-facing
// calls — BGP_Initialize, BGP_Start, BGP_Stop, BGP_Finalize — plus the MPI
// integration that instruments any MPI application without code changes,
// and the binary dump files the post-processing tools mine.
#pragma once

#include <memory>
#include <vector>

#include "core/node_monitor.hpp"
#include "obs/obs.hpp"
#include "runtime/machine.hpp"
#include "runtime/rankctx.hpp"
#include "trace/tracer.hpp"

namespace bgp::pc {

/// What happened when a node's dump was written (one record per node that
/// reached BGP_Finalize with write_dumps on). Injected I/O errors are
/// retried up to Options::dump_write_retries times; `ok == false` means the
/// node's data is lost and the miner must run degraded.
struct DumpWriteOutcome {
  unsigned node = 0;
  std::filesystem::path path;
  unsigned attempts = 0;
  bool ok = false;
  std::string error;                  ///< last failure (empty when clean)
  std::vector<std::string> injected;  ///< silent corruption applied, if any
};

/// What happened when a node's trace was sealed at BGP_Finalize (only with
/// Options::trace.enabled). A node that dies before finalizing gets no
/// record — its `.bgpt.partial` stays behind for degraded mining.
struct TraceSealOutcome {
  unsigned node = 0;
  std::filesystem::path path;
  bool ok = false;
  std::string error;  ///< why sealing failed (empty when clean)
};

class Session {
 public:
  /// One session per Machine run. `options.app_name` names the dump files.
  Session(rt::Machine& machine, Options options = {});
  /// Uninstalls the flight recorder if this session installed it.
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- the four library calls (paper Fig 4/5 workflow) --------------------
  /// Select the counter mode (by node-card parity), configure and clear all
  /// 256 counters. Charges the calling core the library overhead.
  void BGP_Initialize(rt::RankCtx& ctx);
  /// Begin monitoring `set`; counter data accumulates until BGP_Stop(set).
  void BGP_Start(rt::RankCtx& ctx, unsigned set = 0);
  /// Stop monitoring `set` and fold the counter delta into its record.
  void BGP_Stop(rt::RankCtx& ctx, unsigned set = 0);
  /// Dump each node's records into a binary file (<app>.node<N>.bgpc). The
  /// write happens after monitoring stopped, so it lengthens execution but
  /// does not perturb the counters (§IV).
  void BGP_Finalize(rt::RankCtx& ctx);

  /// Install the "new MPI library" behaviour: BGP_Initialize + BGP_Start
  /// run inside MPI_Init, BGP_Stop + BGP_Finalize inside MPI_Finalize, so
  /// linking a session instruments an application with no code changes.
  void link_with_mpi(unsigned set = 0);

  /// Arm thresholding on the counter monitoring `event` (if the node's
  /// programmed mode covers it): an interrupt fires when the counter
  /// crosses `threshold` (paper §I: dynamic feedback to system tasks).
  void arm_threshold(rt::RankCtx& ctx, isa::EventId event, u64 threshold);

  // ---- post-run access ------------------------------------------------------
  [[nodiscard]] NodeMonitor& monitor(unsigned node) {
    return *monitors_.at(node);
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Dump files written by BGP_Finalize (one per node), in node order.
  [[nodiscard]] const std::vector<std::filesystem::path>& dump_files()
      const noexcept {
    return dump_files_;
  }
  /// In-memory dumps of every finalized node (also available when
  /// write_dumps is off), in finalize order.
  [[nodiscard]] const std::vector<NodeDump>& dumps() const noexcept {
    return dumps_;
  }
  /// Per-node write results, in finalize order (empty when write_dumps is
  /// off). Nodes that died before finalizing have no entry.
  [[nodiscard]] const std::vector<DumpWriteOutcome>& write_outcomes()
      const noexcept {
    return write_outcomes_;
  }

  /// Sealed trace files, in node order (empty unless tracing is enabled).
  [[nodiscard]] const std::vector<std::filesystem::path>& trace_files()
      const noexcept {
    return trace_files_;
  }
  /// Per-node trace sealing results, in finalize order.
  [[nodiscard]] const std::vector<TraceSealOutcome>& trace_outcomes()
      const noexcept {
    return trace_outcomes_;
  }
  /// The node's tracer, or nullptr when tracing is off (or the node never
  /// reached BGP_Initialize).
  [[nodiscard]] const trace::NodeTracer* tracer(unsigned node) const {
    return tracers_.at(node).get();
  }

  /// The session's flight recorder, or nullptr when Options::obs is off
  /// (or another recorder was already installed process-wide).
  [[nodiscard]] obs::FlightRecorder* flight_recorder() noexcept {
    return recorder_.get();
  }
  /// Per-node .bgps span files written at finalize, in node order (empty
  /// unless the flight recorder is on with write_spans).
  [[nodiscard]] const std::vector<std::filesystem::path>& span_files()
      const noexcept {
    return span_files_;
  }

  // ---- cancelled-run recovery (signal handlers, daemon drain/kill) --------
  /// Seal every still-open trace (footer + atomic rename) so no
  /// half-written `.bgpt.partial` is left behind. BGP_Finalize seals a
  /// node's trace itself; this covers nodes the cancellation stopped short
  /// of finalizing. Call after Machine::run() returned or threw.
  void seal_all_traces();
  /// Checkpoint-dump every initialized node that never reached its
  /// finalize: force-stop the active sets at the node's current timebase
  /// and write the dump through the usual atomic temp+rename path. Dead
  /// nodes are skipped (their counter state died with them). Call after
  /// Machine::run() threw rt::RunStopped.
  void checkpoint_dump();

 private:
  void attach_tracer(unsigned node);
  /// The original BGP_Finalize body; true when this call completed the
  /// node (its dump was taken).
  bool finalize_node(rt::RankCtx& ctx);
  /// Shared atomic dump-write path (temp + rename, bounded retries);
  /// records the outcome and file list.
  DumpWriteOutcome write_dump_file(const NodeDump& dump, unsigned node);
  void write_node_spans(unsigned node);

  rt::Machine& machine_;
  Options options_;
  std::vector<std::unique_ptr<NodeMonitor>> monitors_;
  std::vector<std::unique_ptr<trace::NodeTracer>> tracers_;
  std::vector<unsigned> finalize_calls_;  ///< per node
  std::vector<NodeDump> dumps_;
  std::vector<std::filesystem::path> dump_files_;
  std::vector<DumpWriteOutcome> write_outcomes_;
  std::vector<std::filesystem::path> trace_files_;
  std::vector<TraceSealOutcome> trace_outcomes_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  bool installed_recorder_ = false;
  std::vector<std::filesystem::path> span_files_;
};

}  // namespace bgp::pc
