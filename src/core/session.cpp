#include "core/session.hpp"

#include <algorithm>
#include <system_error>

#include "common/binio.hpp"
#include "common/log.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"
#include "obs/span_io.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::pc {

namespace {

void charge(rt::RankCtx& ctx, cycles_t cycles) {
  ctx.compute_cycles(cycles);
  mem::emit(ctx.node().sink(),
            isa::ev::system(isa::SysEvent::kUpcOverheadCycles,
                            ctx.core_id()),
            cycles);
}

}  // namespace

Session::Session(rt::Machine& machine, Options options)
    : machine_(machine), options_(std::move(options)) {
  const unsigned n = machine.partition().num_nodes();
  monitors_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    monitors_.push_back(std::make_unique<NodeMonitor>(
        machine.partition().node(i), options_));
  }
  tracers_.resize(n);
  finalize_calls_.assign(n, 0);
  dumps_.reserve(n);
  if (options_.obs.enabled) {
    recorder_ = std::make_unique<obs::FlightRecorder>(n, isa::kCoresPerNode,
                                                      options_.obs);
    // First session wins the process-wide slot; a second concurrent
    // session keeps its (idle) recorder but records nothing.
    if (obs::recorder() == nullptr) {
      obs::set_recorder(recorder_.get());
      installed_recorder_ = true;
    }
  }
}

Session::~Session() {
  if (installed_recorder_) obs::set_recorder(nullptr);
}

void Session::attach_tracer(unsigned node) {
  if (!options_.trace.enabled || tracers_[node] != nullptr) return;
  sys::Node& n = machine_.partition().node(node);
  tracers_[node] = std::make_unique<trace::NodeTracer>(
      n, options_.trace, options_.app_name,
      monitors_[node]->programmed_mode());
  // The runtime pulses the node at instrumentation points; the hook drains
  // the ring buffer to disk and returns the modeled sampling overhead for
  // the runtime to charge to the pulsing core. add (not set): a snapshot
  // publisher may already be pulsing this node.
  n.add_pulse_hook(
      [t = tracers_[node].get()](cycles_t) { return t->pulse(); });
}

void Session::BGP_Initialize(rt::RankCtx& ctx) {
  {
    rt::ObsScope span(ctx, "upc.initialize", obs::SpanCat::kUpc);
    charge(ctx, options_.init_overhead);
    monitors_[ctx.node_id()]->initialize();
  }
  attach_tracer(ctx.node_id());
  if (auto* fr = obs::recorder()) {
    fr->wk().upc_initialize_calls->add(1);
    fr->wk().upc_overhead_cycles->add(options_.init_overhead);
  }
}

void Session::BGP_Start(rt::RankCtx& ctx, unsigned set) {
  {
    rt::ObsScope span(ctx, "upc.start", obs::SpanCat::kUpc);
    charge(ctx, options_.start_overhead);
    mem::emit(ctx.node().sink(),
              isa::ev::system(isa::SysEvent::kUpcStartCalls, ctx.core_id()),
              1);
    monitors_[ctx.node_id()]->start(set, ctx.now());
  }
  if (tracers_[ctx.node_id()] != nullptr) {
    tracers_[ctx.node_id()]->start();
  }
  if (auto* fr = obs::recorder()) {
    fr->wk().upc_start_calls->add(1);
    fr->wk().upc_overhead_cycles->add(options_.start_overhead);
  }
}

void Session::BGP_Stop(rt::RankCtx& ctx, unsigned set) {
  {
    rt::ObsScope span(ctx, "upc.stop", obs::SpanCat::kUpc);
    charge(ctx, options_.stop_overhead);
    mem::emit(ctx.node().sink(),
              isa::ev::system(isa::SysEvent::kUpcStopCalls, ctx.core_id()),
              1);
    monitors_[ctx.node_id()]->stop(set, ctx.now());
  }
  if (auto* fr = obs::recorder()) {
    fr->wk().upc_stop_calls->add(1);
    fr->wk().upc_overhead_cycles->add(options_.stop_overhead);
  }
}

void Session::BGP_Finalize(rt::RankCtx& ctx) {
  const unsigned node = ctx.node_id();
  bool node_done = false;
  {
    rt::ObsScope span(ctx, "upc.finalize", obs::SpanCat::kUpc);
    node_done = finalize_node(ctx);
  }
  if (auto* fr = obs::recorder()) {
    fr->wk().upc_finalize_calls->add(1);
    fr->wk().upc_overhead_cycles->add(options_.finalize_overhead);
  }
  // Written after the finalize span closed so the file carries it too.
  if (node_done) write_node_spans(node);
}

bool Session::finalize_node(rt::RankCtx& ctx) {
  // Dumping happens once per node, when its last local rank finalizes.
  const unsigned node = ctx.node_id();
  const unsigned ppn = sys::processes_per_node(machine_.partition().mode());
  const unsigned local_ranks = std::min(ppn, machine_.num_ranks() - node * ppn);
  charge(ctx, options_.finalize_overhead);
  if (++finalize_calls_[node] < local_ranks) {
    return false;
  }
  NodeDump dump = monitors_[node]->finalize();
  if (machine_.ft_params().enabled) {
    // Survivors carry the recovery log (who died, when detected, what the
    // revoke/agree/shrink steps cost) so the miner can account for the
    // missing nodes; serialize() upgrades such dumps to format v3.
    dump.recovery = machine_.recovery_log();
  }
  dumps_.push_back(dump);

  if (tracers_[node] != nullptr && !tracers_[node]->sealed()) {
    // Seal the trace (footer + rename) before the dump write; the node
    // survived to finalize, so its timeline is complete.
    rt::ObsScope span(ctx, "trace.seal", obs::SpanCat::kTrace);
    TraceSealOutcome seal;
    seal.node = node;
    try {
      seal.path = tracers_[node]->seal();
      seal.ok = true;
      trace_files_.push_back(seal.path);
      std::sort(trace_files_.begin(), trace_files_.end());
    } catch (const std::exception& e) {
      seal.error = e.what();
    }
    trace_outcomes_.push_back(std::move(seal));
  }

  if (!options_.write_dumps) {
    return true;
  }

  rt::ObsScope write_span(ctx, "dump.write", obs::SpanCat::kDump);
  write_dump_file(dump, node);
  return true;
}

DumpWriteOutcome Session::write_dump_file(const NodeDump& dump,
                                          unsigned node) {
  auto bytes = NodeMonitor::serialize(dump);
  DumpWriteOutcome outcome;
  outcome.node = node;
  outcome.path = options_.dump_dir /
                 strfmt("%s.node%04u.bgpc", options_.app_name.c_str(), node);
  if (options_.fault != nullptr) {
    // Silent data corruption (torn write / bit rot) mutates the bytes but
    // reports success — exactly the case the v2 section CRCs exist for.
    outcome.injected = options_.fault->corrupt_dump(node, bytes);
  }

  // Atomic publication: write a temp file, then rename over the final name,
  // so readers never observe a half-written .bgpc. Injected I/O errors are
  // retried with a bounded budget; a node whose budget runs out loses its
  // dump and the run continues (the miner handles the gap).
  std::filesystem::path tmp = outcome.path;
  tmp += ".tmp";
  for (unsigned attempt = 1; attempt <= options_.dump_write_retries + 1;
       ++attempt) {
    outcome.attempts = attempt;
    try {
      if (options_.fault != nullptr && options_.fault->next_write_fails(node)) {
        throw BinIoError(
            strfmt("injected I/O error writing %s", tmp.string().c_str()));
      }
      BinaryWriter w;
      w.put_bytes(bytes);
      w.write_file(tmp);
      std::filesystem::rename(tmp, outcome.path);
      outcome.ok = true;
      outcome.error.clear();
      break;
    } catch (const std::exception& e) {
      outcome.error = e.what();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
    }
  }
  write_outcomes_.push_back(outcome);
  if (outcome.ok) {
    dump_files_.push_back(outcome.path);
    std::sort(dump_files_.begin(), dump_files_.end());
  }
  if (auto* fr = obs::recorder()) {
    fr->wk().dump_writes->add(1);
    fr->wk().dump_bytes->add(outcome.ok ? bytes.size() : 0);
    fr->wk().dump_retries->add(outcome.attempts - 1);
    if (!outcome.ok) fr->wk().dump_failures->add(1);
  }
  return outcome;
}

void Session::seal_all_traces() {
  for (unsigned node = 0; node < tracers_.size(); ++node) {
    trace::NodeTracer* t = tracers_[node].get();
    if (t == nullptr || t->sealed()) continue;
    TraceSealOutcome seal;
    seal.node = node;
    try {
      seal.path = t->seal();
      seal.ok = true;
      trace_files_.push_back(seal.path);
      std::sort(trace_files_.begin(), trace_files_.end());
    } catch (const std::exception& e) {
      seal.error = e.what();
    }
    trace_outcomes_.push_back(std::move(seal));
  }
}

void Session::checkpoint_dump() {
  const unsigned ppn = sys::processes_per_node(machine_.partition().mode());
  const std::vector<unsigned> dead = machine_.dead_nodes();
  for (unsigned node = 0; node < monitors_.size(); ++node) {
    if (!monitors_[node]->initialized()) continue;
    const unsigned local_ranks =
        std::min(ppn, machine_.num_ranks() > node * ppn
                          ? machine_.num_ranks() - node * ppn
                          : 0u);
    if (local_ranks == 0) continue;
    if (finalize_calls_[node] >= local_ranks) continue;  // already dumped
    if (std::find(dead.begin(), dead.end(), node) != dead.end()) continue;
    monitors_[node]->force_stop_all(machine_.node_time(node));
    NodeDump dump = monitors_[node]->finalize();
    if (machine_.ft_params().enabled) {
      dump.recovery = machine_.recovery_log();
    }
    dumps_.push_back(dump);
    finalize_calls_[node] = local_ranks;  // idempotence: node is now dumped
    if (options_.write_dumps) write_dump_file(dump, node);
  }
}

void Session::write_node_spans(unsigned node) {
  // Only the session that owns the installed recorder has this node's
  // spans; skip otherwise.
  if (!installed_recorder_ || !options_.obs.write_spans) return;
  const auto path =
      obs::span_file_path(options_.dump_dir, options_.app_name, node);
  try {
    obs::write_span_file(path, options_.app_name, node, *recorder_);
    span_files_.push_back(path);
    std::sort(span_files_.begin(), span_files_.end());
  } catch (const std::exception& e) {
    log_warn("node %u: span file not written: %s", node, e.what());
  }
}

void Session::link_with_mpi(unsigned set) {
  machine_.set_mpi_hooks(rt::MpiHooks{
      .on_init =
          [this, set](rt::RankCtx& ctx) {
            BGP_Initialize(ctx);
            BGP_Start(ctx, set);
          },
      .on_finalize =
          [this, set](rt::RankCtx& ctx) {
            BGP_Stop(ctx, set);
            BGP_Finalize(ctx);
          },
  });
}

void Session::arm_threshold(rt::RankCtx& ctx, isa::EventId event,
                            u64 threshold) {
  auto& upc = ctx.node().upc();
  if (isa::event_mode(event) != upc.mode()) {
    return;  // this node's programmed mode does not cover the event
  }
  const u8 counter = isa::event_counter(event);
  upc::CounterConfig cfg = upc.config(counter);
  cfg.interrupt_enable = true;
  cfg.threshold = threshold;
  upc.configure(counter, cfg);
}

}  // namespace bgp::pc
