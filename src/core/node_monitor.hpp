// Per-node monitoring agent. The UPC unit's configuration and counters are
// globally accessible on the node (paper §I), so a single agent manages
// them no matter how many processes the node hosts; rank-level API calls
// delegate here and only the first/last call per node actually touches the
// unit.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/dumpformat.hpp"
#include "core/options.hpp"
#include "sys/node.hpp"

namespace bgp::pc {

class NodeMonitor {
 public:
  NodeMonitor(sys::Node& node, const Options& options);

  /// Program the unit: counter mode by card parity, all counters enabled,
  /// edge-rise signaling, counters cleared. Idempotent per run.
  void initialize();

  /// Begin/extend monitoring for `set`. The first active start on the node
  /// snapshots the counters and starts the unit.
  void start(unsigned set, cycles_t now);

  /// End monitoring for `set`. When the last concurrently-started monitor
  /// of the set stops, the counter delta is accumulated into the set.
  void stop(unsigned set, cycles_t now);

  /// End every set still being monitored, folding the counter deltas as of
  /// `now` — the checkpoint path for runs cancelled before the application
  /// reached its own BGP_Stop calls. No-op for sets that are not active.
  void force_stop_all(cycles_t now);

  /// Write (or just assemble) the dump record. Returns the dump contents.
  [[nodiscard]] NodeDump finalize();

  /// Serialize/parse the on-disk format. Writers default to the current
  /// (checksummed) version, upgraded to v3 automatically when the dump
  /// carries recovery events; readers accept v1..v3.
  [[nodiscard]] static std::vector<std::byte> serialize(
      const NodeDump& dump, u32 version = kDumpVersion);
  [[nodiscard]] static NodeDump parse(std::span<const std::byte> bytes);

  [[nodiscard]] bool initialized() const noexcept { return initialized_; }
  [[nodiscard]] u8 programmed_mode() const noexcept { return mode_; }
  [[nodiscard]] const SetDump& set_record(unsigned set) const {
    return sets_.at(set);
  }
  [[nodiscard]] sys::Node& node() noexcept { return node_; }

 private:
  struct ActiveSet {
    unsigned active_starts = 0;
    std::array<u64, isa::kCountersPerUnit> start_snapshot{};
  };

  sys::Node& node_;
  Options options_;
  u8 mode_ = 0;
  bool initialized_ = false;
  unsigned unit_users_ = 0;  ///< sets currently holding the unit running
  std::vector<SetDump> sets_;
  std::vector<ActiveSet> active_;
};

}  // namespace bgp::pc
