// Binary layout of the per-node dump files written by BGP_Finalize() and
// read by the post-processing tools (paper §IV). Little-endian throughout.
//
//   header:  magic "BGPC" (u32) | version (u32) | node id (u32)
//            | card id (u32) | counter mode (u32) | app name (string)
//            | set count (u32) | [v2: header CRC32 (u32)]
//   per set: set id (u32) | start/stop pair count (u32)
//            | first start cycle (u64) | last stop cycle (u64)
//            | 256 counter deltas (u64 each) | [v2: set CRC32 (u32)]
//   v3 only: recovery event count (u32)
//            | per event: kind (u32) | node (u32) | rank (u32)
//            | cycle (u64) | cost (u64) | aux (u64)
//            | recovery section CRC32 (u32)
//
// Version 2 adds a CRC32 after each section (header and every set),
// computed over that section's bytes (the header CRC excludes the
// magic/version words). Version 3 appends the fault-tolerance recovery
// log (who died, when detected, what the revoke/agree/shrink steps cost);
// writers emit it only when a run actually recovered, so fault-free and
// non-FT runs stay byte-identical to v2. Readers accept all versions.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ft/ftypes.hpp"
#include "isa/events.hpp"

namespace bgp::pc {

inline constexpr u32 kDumpMagic = 0x43504742;  // "BGPC" little-endian
inline constexpr u32 kDumpVersionLegacy = 1;   ///< no section checksums
inline constexpr u32 kDumpVersion = 2;         ///< per-section CRC32
inline constexpr u32 kDumpVersionFt = 3;       ///< + recovery-event section

struct SetDump {
  u32 set_id = 0;
  u32 pairs = 0;  ///< completed start/stop pairs accumulated into deltas
  u64 first_start_cycle = 0;
  u64 last_stop_cycle = 0;
  std::array<u64, isa::kCountersPerUnit> deltas{};
};

struct NodeDump {
  u32 node_id = 0;
  u32 card_id = 0;
  u32 counter_mode = 0;
  std::string app_name;
  std::vector<SetDump> sets;
  /// FT recovery log at this node's finalize (empty for non-FT or
  /// fault-free runs; serialized as the v3 recovery section).
  std::vector<ft::RecoveryEvent> recovery;

  /// Event id of physical counter `i` under this dump's mode.
  [[nodiscard]] isa::EventId event_of(unsigned counter) const {
    return static_cast<isa::EventId>(counter_mode * isa::kCountersPerUnit +
                                     counter);
  }
};

}  // namespace bgp::pc
