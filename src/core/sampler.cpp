#include "core/sampler.hpp"

#include <stdexcept>

#include "common/strfmt.hpp"

namespace bgp::pc {

Sampler::Sampler(sys::Node& node, std::vector<isa::EventId> events,
                 cycles_t interval)
    : node_(node), events_(std::move(events)), interval_(interval) {
  if (interval_ == 0) {
    throw std::invalid_argument("sampler interval must be positive");
  }
  next_due_ = interval_;
}

void Sampler::sample_now() {
  Sample s;
  s.timestamp = node_.timebase();
  s.values.reserve(events_.size());
  // Reads go through the memory-mapped path, like a monitoring thread's.
  const auto& upc = node_.upc();
  for (const isa::EventId ev : events_) {
    const u8 counter = isa::event_counter(ev);
    s.values.push_back(upc.mmio_read64(upc.mmio_base() + 8ull * counter));
  }
  timeline_.push_back(std::move(s));
}

unsigned Sampler::poll() {
  const cycles_t now = node_.timebase();
  unsigned taken = 0;
  while (now >= next_due_) {
    sample_now();
    timeline_.back().timestamp = next_due_;  // attribute to the boundary
    next_due_ += interval_;
    ++taken;
  }
  return taken;
}

std::vector<Sample> Sampler::deltas() const {
  std::vector<Sample> out;
  for (std::size_t i = 1; i < timeline_.size(); ++i) {
    Sample d;
    d.timestamp = timeline_[i].timestamp;
    d.values.resize(events_.size());
    for (std::size_t c = 0; c < events_.size(); ++c) {
      d.values[c] = timeline_[i].values[c] - timeline_[i - 1].values[c];
    }
    out.push_back(std::move(d));
  }
  return out;
}

void Sampler::write_csv(CsvWriter& csv, bool as_deltas) const {
  std::vector<std::string> header{"cycle"};
  for (const isa::EventId ev : events_) {
    header.push_back(std::string(isa::event_info(ev).name));
  }
  csv.header(header);
  const std::vector<Sample> rows = as_deltas ? deltas() : timeline_;
  for (const Sample& s : rows) {
    std::vector<std::string> row{
        strfmt("%llu", static_cast<unsigned long long>(s.timestamp))};
    for (u64 v : s.values) {
      row.push_back(strfmt("%llu", static_cast<unsigned long long>(v)));
    }
    csv.row(row);
  }
}

}  // namespace bgp::pc
