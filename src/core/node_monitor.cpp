#include "core/node_monitor.hpp"

#include <stdexcept>

#include "common/binio.hpp"
#include "common/crc.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"

namespace bgp::pc {

NodeMonitor::NodeMonitor(sys::Node& node, const Options& options)
    : node_(node),
      options_(options),
      sets_(options.max_sets),
      active_(options.max_sets) {
  for (unsigned s = 0; s < options.max_sets; ++s) {
    sets_[s].set_id = s;
  }
}

void NodeMonitor::initialize() {
  if (initialized_) return;
  mode_ = node_.even_card() ? options_.mode_even_cards
                            : options_.mode_odd_cards;
  auto& upc = node_.upc();
  upc.set_mode(mode_);
  upc.reset_config();
  for (unsigned c = 0; c < upc::UpcUnit::kNumCounters; ++c) {
    upc::CounterConfig cfg;
    cfg.signal = upc::SignalMode::kEdgeRise;
    cfg.enabled = true;
    upc.configure(static_cast<u8>(c), cfg);
  }
  upc.reset_counters();
  if (options_.fault != nullptr) {
    // Injected hardware defect: the victim counters are 32-bit wide and
    // preloaded just below the wrap boundary, so mid-run they overflow and
    // the dump carries a wildly implausible delta for sanity to catch.
    for (const auto& w : options_.fault->counter_wraps(node_.id())) {
      if (w.counter >= upc::UpcUnit::kNumCounters) continue;
      upc.set_counter_width(static_cast<u8>(w.counter), 32);
      upc.write(static_cast<u8>(w.counter), w.preload);
    }
  }
  initialized_ = true;
}

void NodeMonitor::start(unsigned set, cycles_t now) {
  if (!initialized_) {
    throw std::logic_error("BGP_Start before BGP_Initialize");
  }
  if (set >= sets_.size()) {
    throw std::out_of_range(strfmt("set %u out of range", set));
  }
  ActiveSet& act = active_[set];
  if (act.active_starts == 0) {
    act.start_snapshot = node_.upc().snapshot();
    if (sets_[set].pairs == 0 && sets_[set].first_start_cycle == 0) {
      sets_[set].first_start_cycle = now;
    }
    if (unit_users_ == 0) {
      node_.upc().start();
    }
    ++unit_users_;
  }
  ++act.active_starts;
}

void NodeMonitor::stop(unsigned set, cycles_t now) {
  if (set >= sets_.size()) {
    throw std::out_of_range(strfmt("set %u out of range", set));
  }
  ActiveSet& act = active_[set];
  if (act.active_starts == 0) {
    throw std::logic_error(strfmt("BGP_Stop(%u) without matching start", set));
  }
  if (--act.active_starts > 0) return;

  const auto snap = node_.upc().snapshot();
  SetDump& rec = sets_[set];
  for (unsigned c = 0; c < isa::kCountersPerUnit; ++c) {
    rec.deltas[c] += snap[c] - act.start_snapshot[c];
  }
  ++rec.pairs;
  rec.last_stop_cycle = now;
  if (--unit_users_ == 0) {
    node_.upc().stop();
  }
}

void NodeMonitor::force_stop_all(cycles_t now) {
  for (unsigned s = 0; s < active_.size(); ++s) {
    if (active_[s].active_starts == 0) continue;
    // Collapse nested starts to one so a single stop() folds the delta.
    active_[s].active_starts = 1;
    stop(s, now);
  }
}

NodeDump NodeMonitor::finalize() {
  NodeDump dump;
  dump.node_id = node_.id();
  dump.card_id = node_.card_id();
  dump.counter_mode = mode_;
  dump.app_name = options_.app_name;
  for (const SetDump& s : sets_) {
    if (s.pairs > 0) dump.sets.push_back(s);
  }
  return dump;
}

namespace {

/// Serialized size of one set record, excluding the v2 CRC word.
constexpr std::size_t kSetRecordBytes =
    sizeof(u32) * 2 + sizeof(u64) * 2 + sizeof(u64) * isa::kCountersPerUnit;

}  // namespace

std::vector<std::byte> NodeMonitor::serialize(const NodeDump& dump,
                                              u32 version) {
  // A recovery log needs the v3 section; fault-free dumps stay at the
  // caller's version so their bytes are unchanged from pre-FT builds.
  if (!dump.recovery.empty() && version == kDumpVersion) {
    version = kDumpVersionFt;
  }
  if (version != kDumpVersionLegacy && version != kDumpVersion &&
      version != kDumpVersionFt) {
    throw BinIoError(strfmt("cannot write BGPC dump version %u", version));
  }
  if (!dump.recovery.empty() && version < kDumpVersionFt) {
    throw BinIoError(
        strfmt("dump version %u cannot carry %zu recovery event(s)", version,
               dump.recovery.size()));
  }
  BinaryWriter w;
  w.put<u32>(kDumpMagic);
  w.put<u32>(version);
  const std::size_t header_begin = w.size();
  w.put<u32>(dump.node_id);
  w.put<u32>(dump.card_id);
  w.put<u32>(dump.counter_mode);
  w.put_string(dump.app_name);
  w.put<u32>(static_cast<u32>(dump.sets.size()));
  if (version >= 2) {
    w.put<u32>(crc32(std::span(w.buffer()).subspan(header_begin)));
  }
  for (const SetDump& s : dump.sets) {
    const std::size_t set_begin = w.size();
    w.put<u32>(s.set_id);
    w.put<u32>(s.pairs);
    w.put<u64>(s.first_start_cycle);
    w.put<u64>(s.last_stop_cycle);
    for (u64 d : s.deltas) w.put<u64>(d);
    if (version >= 2) {
      w.put<u32>(crc32(std::span(w.buffer()).subspan(set_begin)));
    }
  }
  if (version >= kDumpVersionFt) {
    const std::size_t rec_begin = w.size();
    w.put<u32>(static_cast<u32>(dump.recovery.size()));
    for (const ft::RecoveryEvent& e : dump.recovery) {
      w.put<u32>(static_cast<u32>(e.kind));
      w.put<u32>(e.node);
      w.put<u32>(e.rank);
      w.put<u64>(e.cycle);
      w.put<u64>(e.cost);
      w.put<u64>(e.aux);
    }
    w.put<u32>(crc32(std::span(w.buffer()).subspan(rec_begin)));
  }
  return w.buffer();
}

NodeDump NodeMonitor::parse(std::span<const std::byte> bytes) {
  BinaryReader r(bytes);
  if (r.get<u32>() != kDumpMagic) {
    throw BinIoError("not a BGPC dump (bad magic)");
  }
  const u32 version = r.get<u32>();
  if (version != kDumpVersionLegacy && version != kDumpVersion &&
      version != kDumpVersionFt) {
    throw BinIoError(strfmt("unsupported BGPC dump version %u", version));
  }
  const bool checksummed = version >= 2;
  const auto verify_crc = [&r](const char* what, std::size_t begin) {
    const u32 computed = crc32(r.window(begin, r.position()));
    const std::size_t crc_at = r.position();
    const u32 stored = r.get<u32>();
    if (stored != computed) {
      throw BinIoError(
          strfmt("%s CRC mismatch over bytes %zu..%zu (stored %08X, "
                 "computed %08X)",
                 what, begin, crc_at, stored, computed));
    }
  };

  NodeDump dump;
  const std::size_t header_begin = r.position();
  dump.node_id = r.get<u32>();
  dump.card_id = r.get<u32>();
  dump.counter_mode = r.get<u32>();
  if (dump.counter_mode >= isa::kNumCounterModes) {
    throw BinIoError("corrupt dump: counter mode out of range");
  }
  dump.app_name = r.get_string();
  const u32 nsets = r.get<u32>();
  if (checksummed) verify_crc("header", header_begin);

  const std::size_t per_set =
      kSetRecordBytes + (checksummed ? sizeof(u32) : 0);
  if (static_cast<u64>(nsets) * per_set > r.remaining()) {
    throw BinIoError(
        strfmt("corrupt dump: header claims %u sets (%llu bytes) but only "
               "%zu bytes remain",
               nsets, static_cast<unsigned long long>(u64{nsets} * per_set),
               r.remaining()));
  }
  dump.sets.resize(nsets);
  for (SetDump& s : dump.sets) {
    const std::size_t set_begin = r.position();
    s.set_id = r.get<u32>();
    s.pairs = r.get<u32>();
    s.first_start_cycle = r.get<u64>();
    s.last_stop_cycle = r.get<u64>();
    for (u64& d : s.deltas) d = r.get<u64>();
    if (checksummed) verify_crc("set", set_begin);
  }
  if (version >= kDumpVersionFt) {
    constexpr std::size_t kRecoveryRecordBytes =
        sizeof(u32) * 3 + sizeof(u64) * 3;
    const std::size_t rec_begin = r.position();
    const u32 nrec = r.get<u32>();
    if (u64{nrec} * kRecoveryRecordBytes + sizeof(u32) > r.remaining()) {
      throw BinIoError(
          strfmt("corrupt dump: recovery section claims %u events but only "
                 "%zu bytes remain",
                 nrec, r.remaining()));
    }
    dump.recovery.resize(nrec);
    for (ft::RecoveryEvent& e : dump.recovery) {
      const u32 kind = r.get<u32>();
      if (kind > static_cast<u32>(ft::RecoveryKind::kShrink)) {
        throw BinIoError(
            strfmt("corrupt dump: unknown recovery event kind %u", kind));
      }
      e.kind = static_cast<ft::RecoveryKind>(kind);
      e.node = r.get<u32>();
      e.rank = r.get<u32>();
      e.cycle = r.get<u64>();
      e.cost = r.get<u64>();
      e.aux = r.get<u64>();
    }
    verify_crc("recovery", rec_begin);
  }
  if (!r.at_end()) {
    throw BinIoError("corrupt dump: trailing bytes");
  }
  return dump;
}

}  // namespace bgp::pc
