// Configuration of a performance-counter monitoring session.
#pragma once

#include <filesystem>
#include <string>

#include "common/types.hpp"
#include "obs/obs.hpp"
#include "trace/tracer.hpp"

namespace bgp::fault {
class FaultInjector;
}

namespace bgp::pc {

struct Options {
  /// Counter mode programmed on even-numbered node cards. Together with
  /// `mode_odd_cards` this implements the paper's §IV scheme: "512 events
  /// can be monitored in one single run by monitoring the first 256 events
  /// in the even numbered node cards and the second 256 events in the odd
  /// numbered node cards".
  u8 mode_even_cards = 0;
  u8 mode_odd_cards = 1;

  /// Directory receiving the per-node binary dump files.
  std::filesystem::path dump_dir = ".";
  /// Application name used in dump file names and records.
  std::string app_name = "app";

  /// Maximum number of instrumentation sets (start/stop pairs).
  unsigned max_sets = 16;

  /// Overhead model, calibrated to the paper's measurement: "the total
  /// overhead encountered in initializing the UPC unit, the start() and the
  /// stop() functions were measured to be 196 machine cycles".
  cycles_t init_overhead = 120;
  cycles_t start_overhead = 40;
  cycles_t stop_overhead = 36;
  /// Finalize is dominated by writing the dump file; the paper notes this
  /// happens after monitoring stops and therefore does not perturb the
  /// counter data.
  cycles_t finalize_overhead = 20000;

  /// Skip writing dump files (counters stay queryable in memory).
  bool write_dumps = true;

  /// Extra attempts after a failed dump write before the node's dump is
  /// declared lost (writes are atomic: temp file + rename, so a failed
  /// attempt never leaves a half-written .bgpc behind).
  unsigned dump_write_retries = 3;

  /// Optional fault-injection oracle (not owned). When set, the interface
  /// library consults it for counter-wrap defects and dump-write faults.
  fault::FaultInjector* fault = nullptr;

  /// Time-series tracing (off by default): when enabled the session attaches
  /// a threshold-driven sampler to every node and streams per-interval
  /// counter deltas into <trace.trace_dir>/<app>.node<N>.bgpt files.
  trace::TraceConfig trace;

  /// Flight recorder (off by default): when enabled the session installs
  /// an obs::FlightRecorder for the run — structured spans around library
  /// calls, collectives, FT recovery and dump writes, plus the process
  /// metrics registry — and writes per-node <app>.node<N>.bgps span files
  /// into dump_dir at finalize (see docs/observability.md).
  obs::ObsConfig obs;
};

/// Combined instrumentation overhead on the measurement path (§IV).
[[nodiscard]] constexpr cycles_t measured_overhead(const Options& o) noexcept {
  return o.init_overhead + o.start_overhead + o.stop_overhead;
}

}  // namespace bgp::pc
