#include "runtime/epoch.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "runtime/rankctx.hpp"

namespace bgp::rt {

namespace {

unsigned worker_count(const MachineConfig& cfg, unsigned num_nodes,
                      unsigned num_ranks) {
  unsigned n = cfg.jobs != 0 ? cfg.jobs
                             : std::max(1u, std::thread::hardware_concurrency());
  // The node is the unit of host parallelism (its ranks share simulated
  // caches and execute exclusively), so more workers than nodes is waste.
  n = std::min(n, num_nodes);
  n = std::min(n, num_ranks);
  return std::max(1u, n);
}

}  // namespace

EpochScheduler::EpochScheduler(Machine& machine, const RankFn& program)
    : machine_(machine),
      program_(program),
      strict_(machine.strict_sched()),
      states_(machine.num_ranks()),
      nodes_(machine.partition().num_nodes()),
      pending_q_(machine.num_ranks()),
      pool_(worker_count(machine.config(), machine.partition().num_nodes(),
                         machine.num_ranks())) {
  for (unsigned r = 0; r < machine_.num_ranks(); ++r) {
    RankCtx& ctx = *machine_.ranks_[r]->ctx;
    states_[r].node = ctx.node_id();
    states_[r].key = ctx.core().now();  // boot skew: same key pick_next sees
    states_[r].qnode.rank = r;
    nodes_[states_[r].node].residents.push_back(r);
    pending_q_.push(states_[r].key, r);
  }
}

EpochScheduler::~EpochScheduler() = default;

int EpochScheduler::global_min_locked() {
  unsigned r = 0;
  if (pending_q_.peek_min(r, [this](unsigned cand) { return pending(cand); })) {
    return static_cast<int>(r);
  }
  return -1;
}

int EpochScheduler::pick_local_locked(unsigned node) {
  const NodeState& ns = nodes_[node];
  int best = -1;
  cycles_t best_key = 0;
  for (const unsigned r : ns.residents) {
    if (!pending(r)) continue;
    const RankState& s = states_[r];
    if (best < 0 || SchedKey{s.key, r} <
                        SchedKey{best_key, static_cast<unsigned>(best)}) {
      best = static_cast<int>(r);
      best_key = s.key;
    }
  }
  if (best < 0) return -1;
  RankState& s = states_[static_cast<std::size_t>(best)];
  switch (s.phase) {
    case Phase::kParkedSlot:
    case Phase::kRunning:
      // A parked commit is the coordinator's to execute (drain), and a
      // running rank already owns the executor; either way this node's
      // executor has nothing to dispatch right now.
      return -1;
    case Phase::kReadyResume:
      // Mid-segment continuation: the serial dispatcher never preempts a
      // running rank. In strict mode the world must stay frozen around
      // the single progressing rank, so even resumes gate on global order.
      if (strict_ && global_min_locked() != best) return -1;
      return best;
    case Phase::kStartable: {
      if (strict_) {
        return global_min_locked() == best ? best : -1;
      }
      // Hazard gate: a locally-blocked rank could be woken by a commit at
      // a key below ours, and the serial dispatcher would run it first on
      // these very caches. Blocked clocks are stable under the lock.
      const unsigned br = static_cast<unsigned>(best);
      for (const unsigned w : ns.residents) {
        if (states_[w].phase != Phase::kBlocked) continue;
        const cycles_t wc = machine_.ranks_[w]->ctx->core().now();
        if (SchedKey{wc, w} < SchedKey{s.key, br}) {
          return global_min_locked() == best ? best : -1;
        }
      }
      return best;
    }
    default:
      return -1;
  }
}

void EpochScheduler::pump_queue_locked() {
  if (queue_.empty()) return;
  for (CommitNode* n = queue_.take_all(); n != nullptr;) {
    // Read `next` before applying: once applied, the owning fiber may be
    // resumed (by an executor that serializes after us on mu_) and push
    // the node again.
    CommitNode* const next = n->next.load(std::memory_order_relaxed);
    RankState& s = states_[n->rank];
    switch (n->op) {
      case CommitOp::kParkSlot:
        s.slot_fn = n->fn;
        s.phase = Phase::kParkedSlot;
        break;
      case CommitOp::kYieldSegment:
        s.key = n->key;
        pending_q_.invalidate(n->rank);
        pending_q_.push(s.key, n->rank);
        s.phase = Phase::kStartable;
        break;
    }
    n = next;
  }
}

void EpochScheduler::drain_commits_locked() {
  pump_queue_locked();
  for (;;) {
    const int g = global_min_locked();
    if (g < 0) break;
    RankState& s = states_[static_cast<std::size_t>(g)];
    if (s.phase != Phase::kParkedSlot) break;
    try {
      (*s.slot_fn)();
    } catch (...) {
      s.slot_error = std::current_exception();
    }
    s.slot_fn = nullptr;
    s.phase = Phase::kReadyResume;
    // Keep draining: the commit may have unblocked a chain of slots, and
    // the resuming rank (still the minimum) stops the loop at the top.
  }
}

void EpochScheduler::sweep_locked() {
  for (unsigned n = 0; n < nodes_.size(); ++n) {
    NodeState& ns = nodes_[n];
    if (ns.active || ns.residents.empty()) continue;
    if (pick_local_locked(n) < 0) continue;
    ns.active = true;
    ++active_nodes_;
    pool_.post([this, n] { node_loop(n); });
  }
}

void EpochScheduler::node_loop(unsigned node) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Fibers on other nodes may have published transitions lock-free
    // since the last holder pumped; apply them before picking.
    pump_queue_locked();
    // Honor request_stop() promptly: segments end here constantly, and
    // make_ready/on_ready need mu_, which we hold.
    if (machine_.service_stop()) sweep_locked();
    const int r = pick_local_locked(node);
    if (r < 0) break;
    RankState& s = states_[static_cast<std::size_t>(r)];
    s.phase = Phase::kRunning;
    if (!s.fiber) {
      const unsigned rank = static_cast<unsigned>(r);
      s.fiber = std::make_unique<Fiber>(machine_.config().fiber_stack_bytes,
                                        [this, rank] { fiber_main(rank); });
    }
    Fiber* fiber = s.fiber.get();
    lock.unlock();
    fiber->resume();
    lock.lock();
    // The segment ended in a yield/park/terminal; commits it enabled (and
    // wakes from those commits) may put other nodes — or this one — back
    // in business.
    drain_commits_locked();
    sweep_locked();
  }
  nodes_[node].active = false;
  if (--active_nodes_ == 0) cv_main_.notify_all();
}

void EpochScheduler::run_at_slot(unsigned rank, const std::function<void()>& fn) {
  RankState& s = states_[rank];
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: publish the park lock-free and get off the mutex. Until
    // the holder pumps, this rank still looks kRunning at its frozen key —
    // strictly more conservative than kParkedSlot (drain stalls at it
    // instead of executing it), so no later slot can jump the order. Our
    // park returns control to our node executor, which locks and pumps,
    // so the transition cannot strand.
    s.qnode.op = CommitOp::kParkSlot;
    s.qnode.fn = &fn;
    queue_.push(&s.qnode);
    s.fiber->park();
    // Same sequencing argument as the locked path below: the drain wrote
    // slot_error under mu_ before our executor resumed us.
    std::exception_ptr err = std::move(s.slot_error);
    s.slot_error = nullptr;
    if (err) std::rethrow_exception(err);
    return;
  }
  s.phase = Phase::kParkedSlot;
  s.slot_fn = &fn;
  drain_commits_locked();  // fast path: we may be the global minimum already
  if (s.phase == Phase::kReadyResume) {
    s.phase = Phase::kRunning;
    std::exception_ptr err = std::move(s.slot_error);
    s.slot_error = nullptr;
    sweep_locked();  // our commit may have woken remote ranks
    lock.unlock();
    if (err) std::rethrow_exception(err);
    return;
  }
  sweep_locked();
  lock.unlock();
  s.fiber->park();
  // Resumed by our node's executor after the coordinator drained our slot.
  // The drain wrote slot_error under mu_, the executor locked mu_ before
  // resuming us on its own OS thread: sequenced, no lock needed here.
  std::exception_ptr err = std::move(s.slot_error);
  s.slot_error = nullptr;
  if (err) std::rethrow_exception(err);
}

void EpochScheduler::yield_segment(unsigned rank) {
  RankState& s = states_[rank];
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Contended: publish the yield lock-free (the new key rides in the
    // node; reading our own core clock needs no lock) and park. We forgo
    // the keep-running fast path — the executor re-dispatches us once the
    // transition is pumped.
    s.qnode.op = CommitOp::kYieldSegment;
    s.qnode.key = machine_.ranks_[rank]->ctx->core().now();
    queue_.push(&s.qnode);
    s.fiber->park();
    return;
  }
  s.key = machine_.ranks_[rank]->ctx->core().now();
  pending_q_.invalidate(rank);
  pending_q_.push(s.key, rank);
  s.phase = Phase::kStartable;
  drain_commits_locked();
  // Fast path: if this rank is still what the node would dispatch next,
  // keep running without a fiber switch.
  const bool self_next = pick_local_locked(s.node) == static_cast<int>(rank);
  if (self_next) s.phase = Phase::kRunning;
  sweep_locked();
  lock.unlock();
  if (!self_next) s.fiber->park();
}

void EpochScheduler::block_fiber(unsigned rank) {
  RankState& s = states_[rank];
  // Deliberately NOT queued lock-free: a commit that wakes this rank
  // (on_ready) while the block transition sat unpumped would see it
  // kRunning and drop the wake, stranding the fiber. Blocks are rare
  // (recv/collective waits) — the mutex stays.
  std::unique_lock<std::mutex> lock(mu_);
  s.phase = Phase::kBlocked;
  pending_q_.invalidate(rank);
  drain_commits_locked();  // we left the pending set; commits may proceed
  sweep_locked();
  lock.unlock();
  s.fiber->park();
}

void EpochScheduler::on_ready(unsigned rank) {
  // Called from inside a commit or stall resolution, lock already held.
  RankState& s = states_[rank];
  if (s.phase != Phase::kBlocked) return;  // already pending
  s.key = machine_.ranks_[rank]->ctx->core().now();
  s.phase = Phase::kStartable;
  pending_q_.invalidate(rank);
  pending_q_.push(s.key, rank);
}

void EpochScheduler::fiber_main(unsigned rank) {
  Machine::Rank& self = *machine_.ranks_[rank];
  try {
    if (machine_.aborting_.load(std::memory_order_relaxed)) throw AbortRun{};
    program_(*self.ctx);
    self.status = Machine::Status::kFinished;
  } catch (const AbortRun&) {
    self.status = Machine::Status::kFailed;
  } catch (const NodeDeathFault& death) {
    // Death bookkeeping mutates shared lists and obs counters: commit it
    // at this rank's slot (faults imply strict mode, so the slot is
    // immediate — same point in the order the serial dispatcher records
    // it at).
    const bool inherited = death.inherited;
    run_at_slot(rank,
                [this, rank, inherited] {
                  machine_.record_rank_death(rank, inherited);
                });
  } catch (...) {
    self.status = Machine::Status::kFailed;
    self.error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  states_[rank].phase = Phase::kTerminal;
  pending_q_.invalidate(rank);
  ++terminal_count_;
  drain_commits_locked();
  sweep_locked();
  cv_main_.notify_all();
  lock.unlock();
  // Returning unwinds the fiber back into its node executor.
}

void EpochScheduler::run() {
  const unsigned n = machine_.num_ranks();
  std::unique_lock<std::mutex> lock(mu_);
  sweep_locked();
  for (;;) {
    cv_main_.wait(lock, [this, n] {
      return terminal_count_ == n || active_nodes_ == 0;
    });
    if (terminal_count_ == n) break;
    // No executor is active: either a wake raced the last node_loop exit,
    // or nobody can run at all. A pending stop must be serviced before
    // resolve_stall, or a stop during a full block would be misread as a
    // deadlock.
    machine_.service_stop();
    drain_commits_locked();
    sweep_locked();
    if (active_nodes_ > 0) continue;
    if (terminal_count_ == n) break;
    std::string diag;
    const Machine::StallOutcome out = machine_.resolve_stall(diag);
    if (out == Machine::StallOutcome::kAllDone) break;
    if (out == Machine::StallOutcome::kDeadlock) deadlock_diag_ = diag;
    // kProgress / kDeadlock / kAbortFailure all woke ranks via
    // make_ready; dispatch them (deadlock/abort victims unwind via
    // their wake flags).
    sweep_locked();
  }
  lock.unlock();
  if (!deadlock_diag_.empty()) throw std::runtime_error(deadlock_diag_);
}

}  // namespace bgp::rt
