// The parallel epoch scheduler (MachineConfig::sched == kParallel).
//
// Model: each rank runs on its own fiber; fibers are multiplexed onto a
// bounded worker pool with one task per *node* (a node's ranks share the
// simulated caches, so they execute mutually exclusively — the node is the
// unit of host parallelism). A rank runs its compute segment lock-free
// (its core, caches and counters are private while it runs) and parks at
// every cross-rank interaction; interactions execute as *commits* in
// ascending (simulated cycle at segment start, rank) order — exactly the
// order the serial dispatcher's pick_next produces — so same-seed runs
// are byte-identical to --sched=serial.
//
// Why the order matches the serial dispatcher (the commit-order theorem):
// the serial scheduler is greedy — at each step it runs the minimum
// (key, rank) over the *dynamic* set of pending ranks, where a rank's key
// is its core clock frozen at the moment it became ready. Here a commit
// executes only when its rank is the global minimum over pending ranks,
// and a rank woken by a commit joins the pending set only at that commit
// (same as serial). Induction over commits: both schedulers pop the same
// greedy sequence.
//
// Concurrency rules that keep compute segments parallel:
//  * A rank may *start* a segment (kStartable) out of global order when no
//    locally-blocked rank could be woken into an earlier slot — the hazard
//    gate: if some rank w on the same node is blocked with
//    (clock_w, w) < (key_r, r), a commit could wake w at a key below r's,
//    so r must wait until it is the global minimum. (Blocked clocks are
//    stable while blocked: only commits move them, and commits serialize
//    under the scheduler lock.)
//  * A rank *resuming* mid-segment after a commit (kReadyResume) continues
//    immediately — the serial scheduler never preempts a running rank
//    either.
//  * Strict mode (fault injection or FT enabled): segments read global
//    state mid-flight (death schedules, revocation flags, group
//    membership), so both kStartable and kReadyResume gate on the global
//    minimum — at most one rank progresses at a time, in exactly serial
//    order, and the world is frozen around it. Same results, no races,
//    still one fiber per rank instead of one thread.
//  * Segment boundaries are lock-free under contention: a fiber that
//    fails the scheduler-mutex try_lock publishes its transition to an
//    MPSC commit queue (runtime/commitq.hpp) and parks instead of
//    blocking; the lock holder pumps the queue before every scheduling
//    decision. Unapplied transitions only make the dispatch gates more
//    conservative (the rank still looks kRunning at its frozen key), so
//    the commit sequence — and therefore every byte of output — is
//    unchanged.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/commitq.hpp"
#include "runtime/machine.hpp"
#include "runtime/pool.hpp"

namespace bgp::rt {

class EpochScheduler {
 public:
  EpochScheduler(Machine& machine, const RankFn& program);
  ~EpochScheduler();

  /// Drive every rank to a terminal status. Deadlock diagnostics are
  /// thrown after all fibers unwound, mirroring the serial dispatcher.
  void run();

  // -- called from rank fibers (via Machine) ------------------------------
  /// Park until every earlier (cycle, rank) slot committed, then run `fn`
  /// under the scheduler lock. Exceptions from `fn` rethrow here.
  void run_at_slot(unsigned rank, const std::function<void()>& fn);
  /// End-of-segment yield: re-key at the current clock, hand the node's
  /// executor to whoever is next.
  void yield_segment(unsigned rank);
  /// The previous commit left this rank blocked (status already set);
  /// park until a later commit makes it ready.
  void block_fiber(unsigned rank);

  // -- called from inside commits (scheduler lock already held) -----------
  /// `rank` became kReady: give it a fresh key and queue it.
  void on_ready(unsigned rank);

 private:
  /// Where a rank's fiber stands with respect to the dispatch order.
  enum class Phase : u8 {
    kStartable,    ///< at a segment boundary, key frozen, hazard gate applies
    kRunning,      ///< executing on some worker, lock-free
    kParkedSlot,   ///< parked at run_at_slot, commit pending
    kReadyResume,  ///< commit done, may continue mid-segment
    kBlocked,      ///< blocked in a wait structure (recv/collective)
    kTerminal,     ///< finished/failed/died; fiber unwound
  };

  struct RankState {
    std::unique_ptr<Fiber> fiber;  // created lazily at first dispatch
    Phase phase = Phase::kStartable;
    cycles_t key = 0;  ///< dispatch key, frozen while pending
    unsigned node = 0;
    const std::function<void()>* slot_fn = nullptr;
    std::exception_ptr slot_error;
    /// This rank's lock-free transition entry: filled and pushed by the
    /// fiber when it loses the try_lock race at a segment boundary,
    /// applied by pump_queue_locked(). One in flight at a time (the fiber
    /// parks right after pushing).
    CommitNode qnode;
  };

  struct NodeState {
    bool active = false;  ///< a node_loop task is running/posted
    std::vector<unsigned> residents;
  };

  [[nodiscard]] bool pending(unsigned rank) const {
    const Phase p = states_[rank].phase;
    return p == Phase::kStartable || p == Phase::kRunning ||
           p == Phase::kParkedSlot || p == Phase::kReadyResume;
  }
  /// Global minimum (key, rank) over pending ranks, or -1. Prunes stale
  /// heap entries, hence non-const.
  [[nodiscard]] int global_min_locked();
  /// Next rank this node's executor may run, or -1. Applies the hazard /
  /// strict gates.
  [[nodiscard]] int pick_local_locked(unsigned node);
  /// Apply every queued lock-free transition (mutex held). Must run
  /// before scheduling decisions so freshly published yields/parks/blocks
  /// are visible; drain_commits_locked() calls it first.
  void pump_queue_locked();
  /// Execute parked commits while the global minimum pending rank is a
  /// kParkedSlot.
  void drain_commits_locked();
  /// Post node_loop tasks for every inactive node that has dispatchable
  /// work.
  void sweep_locked();
  /// Worker task: run this node's ranks until none is dispatchable.
  void node_loop(unsigned node);
  void fiber_main(unsigned rank);

  Machine& machine_;
  const RankFn& program_;
  const bool strict_;
  std::mutex mu_;
  std::condition_variable cv_main_;
  std::vector<RankState> states_;
  std::vector<NodeState> nodes_;
  /// Pending ranks by frozen (key, rank); entries stay queued across a
  /// whole segment (the key is frozen at segment start, exactly like the
  /// serial dispatcher's pick key).
  ReadyQueue pending_q_;
  /// Lock-free MPSC queue of segment-boundary transitions from fibers
  /// that lost the try_lock race (see runtime/commitq.hpp).
  CommitQueue queue_;
  WorkerPool pool_;
  unsigned active_nodes_ = 0;
  unsigned terminal_count_ = 0;
  std::string deadlock_diag_;
};

}  // namespace bgp::rt
