// Execution resources for the parallel epoch scheduler: ucontext fibers
// (one per rank, so 4096 ranks no longer means 4096 OS threads) and a
// bounded worker pool they are multiplexed onto.
//
// A Fiber is resumed from a worker thread and runs until it parks (or its
// entry function returns); parking switches straight back into resume()'s
// caller. A fiber may park on one worker and be resumed later on another —
// the return context is re-captured on every resume, and the
// AddressSanitizer/ThreadSanitizer fiber-switching hooks are kept informed
// on both edges of every switch so sanitized builds see the stack and
// happens-before structure correctly.
#pragma once

#include <ucontext.h>

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define BGP_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define BGP_ASAN_FIBERS 1
#endif
#endif

#if defined(__SANITIZE_THREAD__)
#define BGP_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BGP_TSAN_FIBERS 1
#endif
#endif

namespace bgp::rt {

/// A cooperatively-scheduled execution context with its own stack.
class Fiber {
 public:
  /// `entry` runs on the fiber's stack at the first resume(); when it
  /// returns the fiber is finished and resume() must not be called again.
  Fiber(std::size_t stack_bytes, std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it parks or finishes. Called from a worker (or
  /// the coordinator); only one thread may resume a given fiber at a time.
  void resume();
  /// Switch from inside the fiber back to whoever resumed it.
  void park();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run_entry();

  std::function<void()> entry_;
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};      ///< the fiber's suspended context
  ucontext_t ret_ctx_{};  ///< where park() returns to (set per resume)
  bool started_ = false;
  bool finished_ = false;

#ifdef BGP_ASAN_FIBERS
  void* fiber_fake_stack_ = nullptr;  ///< fiber side, saved when parking
  void* host_fake_stack_ = nullptr;   ///< host side, saved when resuming
  const void* host_stack_bottom_ = nullptr;
  std::size_t host_stack_size_ = 0;
#endif
#ifdef BGP_TSAN_FIBERS
  void* tsan_fiber_ = nullptr;
  void* tsan_host_ = nullptr;
#endif
};

/// Fixed-size pool of worker threads draining a FIFO of tasks. Tasks are
/// posted under the scheduler's own locking; the pool only guarantees each
/// task runs exactly once on some worker.
class WorkerPool {
 public:
  explicit WorkerPool(unsigned num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void post(std::function<void()> task);
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_main();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace bgp::rt
