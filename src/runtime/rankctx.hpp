// RankCtx: everything a rank program can do — allocate simulated memory,
// execute compiled loops against its core and the node's caches, and
// communicate through MiniMPI. One RankCtx per rank, used only from that
// rank's thread (serial dispatcher) or fiber (parallel dispatcher); all
// cross-rank effects go through Machine commits, so rank programs need no
// locking of their own.
#pragma once

#include <initializer_list>
#include <span>
#include <string>

#include "cpu/core.hpp"
#include "isa/loop.hpp"
#include "runtime/machine.hpp"
#include "runtime/simarray.hpp"

namespace bgp::rt {

/// A contiguous simulated-memory range touched by a loop.
struct MemRange {
  addr_t addr = 0;
  u64 bytes = 0;
  bool write = false;
};

class RankCtx {
 public:
  RankCtx(Machine& machine, unsigned rank);

  // -- identity -----------------------------------------------------------
  [[nodiscard]] unsigned rank() const noexcept { return rank_; }
  [[nodiscard]] unsigned size() const noexcept { return machine_.num_ranks(); }
  [[nodiscard]] unsigned node_id() const noexcept { return placement_.node; }
  [[nodiscard]] unsigned core_id() const noexcept { return placement_.core; }
  [[nodiscard]] sys::Node& node() { return machine_.partition().node(placement_.node); }
  [[nodiscard]] cpu::Core& core() { return node().core(placement_.core); }
  [[nodiscard]] Machine& machine() noexcept { return machine_; }
  [[nodiscard]] cycles_t now() { return core().now(); }

  // -- simulated memory -----------------------------------------------------
  /// Allocate `n` elements in this rank's private region of the node
  /// address space (128-byte aligned).
  template <typename T>
  [[nodiscard]] SimArray<T> alloc(std::size_t n) {
    const addr_t base = allocate_bytes(n * sizeof(T));
    return SimArray<T>(base, n);
  }

  // -- MPI-like lifecycle -----------------------------------------------------
  /// MPI_Init: runs the interface library's hook (if linked) and joins the
  /// initial barrier.
  void mpi_init();
  /// MPI_Finalize: joins the final barrier, then runs the hook.
  void mpi_finalize();

  // -- computation -------------------------------------------------------------
  /// Compile `desc` under the machine's option set, execute the resulting
  /// bundle on this core and walk `ranges` through the cache hierarchy,
  /// charging exposed stalls.
  void loop(const isa::LoopDesc& desc,
            std::initializer_list<MemRange> ranges = {});
  void loop(const isa::LoopDesc& desc, std::span<const MemRange> ranges);

  /// OpenMP-style worksharing across the cores owned by this rank's
  /// process (paper §IX floats hybrid MPI+OpenMP on the quad-core nodes:
  /// SMP/4 gives one process all four cores, Dual two). The loop's trip
  /// count and memory ranges are split statically over `nthreads` cores
  /// (0 = all the process owns); each slice executes on its own core
  /// against the shared caches, then the team joins (fork/join overhead +
  /// clock sync). In SMP/1 and VNM this degenerates to loop().
  void parallel_loop(const isa::LoopDesc& desc,
                     std::span<const MemRange> ranges, unsigned nthreads = 0);
  void parallel_loop(const isa::LoopDesc& desc,
                     std::initializer_list<MemRange> ranges = {},
                     unsigned nthreads = 0);

  /// Number of cores this rank's process owns (its maximum OpenMP team).
  [[nodiscard]] unsigned num_threads() const noexcept;

  /// Walk one memory range (outside of any loop accounting).
  void touch(const MemRange& range, double overlap = 2.0);

  /// Data-dependent gather/scatter: one cache access per element at
  /// base + idx[i]*elem_bytes.
  void gather(addr_t base, std::span<const u32> indices, u32 elem_bytes,
              bool write = false);

  /// Charge raw compute cycles (library/system code outside loop models).
  void compute_cycles(cycles_t cycles) { core().advance(cycles); }

  // -- point-to-point (blocking, eager) ------------------------------------
  static constexpr unsigned kAnySource = ~0u;
  static constexpr int kAnyTag = -1;

  void send(unsigned dst, std::span<const std::byte> data, int tag = 0);
  /// Receives into `out`; the message must be exactly out.size() bytes.
  void recv(unsigned src, std::span<std::byte> out, int tag = 0);

  template <typename T>
  void send_values(unsigned dst, std::span<const T> vals, int tag = 0) {
    send(dst, std::as_bytes(vals), tag);
  }
  template <typename T>
  void recv_values(unsigned src, std::span<T> vals, int tag = 0) {
    recv(src, std::as_writable_bytes(vals), tag);
  }

  /// Paired exchange with a partner rank (deadlock-free).
  void sendrecv(unsigned peer, std::span<const std::byte> out,
                std::span<std::byte> in, int tag = 0);

  // -- collectives ------------------------------------------------------------
  void barrier();
  void bcast(std::span<std::byte> data, unsigned root = 0);
  void allreduce_sum(std::span<double> inout);
  [[nodiscard]] double allreduce_sum(double v);
  [[nodiscard]] u64 allreduce_sum(u64 v);
  [[nodiscard]] double allreduce_max(double v);
  /// Each rank contributes size()*chunk bytes and receives size()*chunk
  /// bytes; block i of `send` goes to rank i's block rank() of `recv`.
  void alltoall(std::span<const std::byte> send, std::span<std::byte> recv,
                u64 chunk);
  /// Gather `mine` (chunk bytes) from every rank into `all` (size()*chunk).
  void allgather(std::span<const std::byte> mine, std::span<std::byte> all);

 private:
  friend class Machine;

  [[nodiscard]] addr_t allocate_bytes(u64 bytes);
  void yield() {
    pulse_node();
    machine_.yield_rank(rank_);
  }
  /// Drive the node's tracing pulse hook (if installed) and charge the
  /// modeled sampling overhead it reports to this rank's core.
  void pulse_node();
  /// touch() without the cooperative yield (for use inside loop()/send()).
  void touch_no_yield(const MemRange& range, double overlap);
  /// Emit a per-rank-slot system event.
  void sys_event(isa::SysEvent e, u64 count = 1);
  /// Wait until `t` (if in the future), attributing it to MPI wait.
  void wait_until(cycles_t t);
  /// Intra-node transfer cost per byte is memory-system bound; inter-node
  /// goes over the torus.
  [[nodiscard]] cycles_t transfer_cycles(unsigned peer_node, u64 bytes) const;
  /// Tree-collective latency; under FT the tree is pruned to the live
  /// nodes of the (possibly shrunk) communicator.
  [[nodiscard]] cycles_t coll_op_cycles(u64 bytes) const;
  /// Barrier-network latency with the same FT pruning.
  [[nodiscard]] cycles_t barrier_latency() const;

  Machine& machine_;
  unsigned rank_;
  sys::Placement placement_;
  addr_t alloc_next_;
  addr_t alloc_limit_;
};

}  // namespace bgp::rt
