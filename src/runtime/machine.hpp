// The execution machine: a Partition plus a deterministic cooperative
// scheduler and a message-passing runtime ("MiniMPI") with the semantics
// the NAS kernels need — blocking send/recv and the usual collectives.
//
// Concurrency model: one OS thread per rank, but exactly one runs at any
// moment (token passing through semaphores). The scheduler always resumes
// the runnable rank whose core clock is furthest behind, so simulated time
// across the cores of a node advances in lockstep-ish fashion and shared
// L3/DDR contention emerges naturally. Runs are bit-deterministic.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <semaphore>
#include <span>
#include <thread>
#include <vector>

#include "compiler/compiler.hpp"
#include "ft/ftypes.hpp"
#include "sys/partition.hpp"

namespace bgp::fault {
class FaultInjector;
}

namespace bgp::ft {
class FtComm;
}

namespace bgp::rt {

class RankCtx;

/// Collective op kinds for rendezvous matching. Kinds at or below
/// kCollFtFirst are internal fault-tolerance operations (agreement,
/// shrink): they are exempt from revocation and failed-peer flagging so
/// recovery itself can communicate on a revoked communicator. -1 is the
/// idle sentinel.
enum CollKind : int {
  kCollAgree = -3,
  kCollShrink = -2,
  kCollBarrier = 0,
  kCollBcast,
  kCollAllreduceSum,
  kCollAllreduceMax,
  kCollAlltoall,
  kCollAllgather,
};
inline constexpr int kCollFtFirst = kCollShrink;

/// Program run by every rank.
using RankFn = std::function<void(RankCtx&)>;

/// Hooks the performance-counter interface library installs around the MPI
/// lifecycle (paper §IV: BGP_Initialize/Start inside MPI_Init, BGP_Stop/
/// Finalize inside MPI_Finalize).
struct MpiHooks {
  std::function<void(RankCtx&)> on_init;
  std::function<void(RankCtx&)> on_finalize;
};

struct MachineConfig {
  unsigned num_nodes = 4;
  sys::OpMode mode = sys::OpMode::kVnm;
  sys::BootOptions boot{};
  /// Compiler option set the "application binaries" were built with.
  opt::OptConfig opt = opt::OptConfig{opt::OptLevel::kO5, false, true};
  /// Use fewer ranks than the partition supports (e.g. the paper's 121-rank
  /// SP/BT runs on 32 nodes). 0 = all.
  unsigned num_ranks_override = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sys::Partition& partition() noexcept { return *partition_; }
  [[nodiscard]] const sys::Partition& partition() const noexcept {
    return *partition_;
  }
  [[nodiscard]] const opt::Compiler& compiler() const noexcept {
    return compiler_;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] unsigned num_ranks() const noexcept { return num_ranks_; }

  void set_mpi_hooks(MpiHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const MpiHooks& mpi_hooks() const noexcept { return hooks_; }

  /// Run `program` on every rank to completion. A Machine runs one program
  /// in its lifetime; failures in any rank abort the run and rethrow here.
  /// Injected node deaths do NOT abort: the dead node's ranks unwind, any
  /// rank blocked on them inherits the death (non-FT) or gets an error
  /// return to recover from (FT; see set_ft_params), and run() returns
  /// normally once the survivors finish (consult dead_ranks()/
  /// stranded_ranks()/dead_nodes()/recovery_log()).
  void run(const RankFn& program);

  /// Attach a fault-injection oracle (not owned; may be nullptr). Must be
  /// set before run().
  void set_fault_injector(fault::FaultInjector* fault) noexcept {
    fault_ = fault;
  }

  /// Enable ULFM-style failure handling (must be set before run()). With FT
  /// on, a call that would block forever on a dead peer raises
  /// ft::ProcFailedError after the modeled detection latency instead of
  /// inheriting the death, and ft::FtComm's revoke/agree/shrink become
  /// available for survivor recovery.
  void set_ft_params(const ft::FtParams& params) noexcept {
    ft_params_ = params;
  }
  [[nodiscard]] const ft::FtParams& ft_params() const noexcept {
    return ft_params_;
  }

  /// Ranks lost directly to injected node deaths, death order.
  [[nodiscard]] const std::vector<unsigned>& dead_ranks() const noexcept {
    return dead_ranks_;
  }
  /// Cascade victims: ranks that were blocked on a dead peer and inherited
  /// the death (non-FT mode only — under FT these survive via recovery).
  [[nodiscard]] const std::vector<unsigned>& stranded_ranks() const noexcept {
    return stranded_ranks_;
  }
  /// Nodes that lost at least one rank (injected or stranded), ascending.
  /// A node listed here never reaches BGP_Finalize, so its dump is missing.
  [[nodiscard]] std::vector<unsigned> dead_nodes() const;

  /// Current (post-shrink) communicator membership, ascending global ranks.
  [[nodiscard]] const std::vector<unsigned>& comm_group() const noexcept {
    return comm_group_;
  }
  /// Number of shrinks performed so far.
  [[nodiscard]] unsigned comm_epoch() const noexcept { return comm_epoch_; }
  /// Whether the communicator is currently revoked (between a survivor's
  /// revoke() and the shrink that installs the new group).
  [[nodiscard]] bool comm_revoked() const noexcept { return revoked_; }
  /// Every recovery step taken so far, in completion order. Copied into
  /// each surviving node's dump at finalize (dump v3).
  [[nodiscard]] const std::vector<ft::RecoveryEvent>& recovery_log()
      const noexcept {
    return recovery_log_;
  }

  /// Longest per-node execution time (max over cores), after run().
  [[nodiscard]] cycles_t node_time(unsigned node) const;
  /// Longest execution time across the whole partition.
  [[nodiscard]] cycles_t elapsed() const;

 private:
  friend class RankCtx;
  friend class ft::FtComm;

  enum class Status : u8 {
    kReady,
    kBlockedRecv,
    kBlockedCollective,
    kFinished,
    kFailed,
    kDied,  ///< lost to an injected node death (terminal, not an error)
  };

  struct Message {
    unsigned src = 0;
    int tag = 0;
    std::vector<std::byte> payload;
    cycles_t ready_time = 0;
  };

  /// Per-rank bookkeeping (thread, scheduling state, mailbox).
  struct Rank {
    std::unique_ptr<RankCtx> ctx;
    std::thread thread;
    std::binary_semaphore go{0};
    Status status = Status::kReady;
    // recv match spec while blocked
    unsigned recv_src = 0;
    int recv_tag = 0;
    std::deque<Message> mailbox;
    std::exception_ptr error;
    /// Set by the scheduler when the rank is blocked on a dead peer; the
    /// next resume throws NodeDeathFault so the rank unwinds too (non-FT).
    bool peer_dead = false;
    /// FT mode: the rank's pending call involved a failed peer; the next
    /// resume bills the detection latency and raises ft::ProcFailedError.
    bool proc_failed = false;
    /// FT mode: a survivor revoked the communicator while this rank was
    /// blocked; the next resume raises ft::RevokedError.
    bool revoked_wake = false;
  };

  /// In-flight collective rendezvous.
  struct Collective {
    int kind = -1;  ///< first arriver's op kind; later arrivals must match
    u64 bytes = 0;
    unsigned root = 0;
    unsigned arrived = 0;
    /// Arrivals that complete the operation inline (FT: live group members
    /// at first arrival; otherwise all ranks — dead members complete via
    /// the scheduler's stall resolution instead).
    unsigned expected = 0;
    /// Internal FT operation (agree/shrink): exempt from revocation and
    /// from failed-peer flagging, so recovery itself can communicate.
    bool internal = false;
    cycles_t max_arrival = 0;
    struct Member {
      std::span<const std::byte> send;
      std::span<std::byte> recv;
      bool present = false;
    };
    std::vector<Member> members;
    /// Stored from the first arrival so the scheduler can complete the
    /// operation over the surviving members when dead ranks never show up.
    std::function<void(Collective&)> combine;
    cycles_t op_latency = 0;
  };

  // -- scheduler internals (called from rank threads via RankCtx) ---------
  /// Give the token back to the scheduler and wait to be resumed.
  void yield_from(unsigned rank);
  /// Deposit a message; wakes a matching blocked receiver.
  void deposit(Message msg, unsigned dst);
  /// Try to pop a matching message from `rank`'s mailbox.
  std::optional<Message> try_match(unsigned rank, unsigned src, int tag);
  /// Enter a collective; blocks (yields) until all ranks arrived, then the
  /// last arrival runs `combine` over the member buffers and releases all.
  void enter_collective(unsigned rank, int kind, u64 bytes, unsigned root,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv,
                        const std::function<void(Collective&)>& combine,
                        cycles_t op_latency);

  /// Run the pending collective's combine over the members that arrived,
  /// sync live cores to the completion time and release the waiters.
  void finish_collective();
  /// Throw NodeDeathFault if `rank`'s node is past its injected death
  /// cycle. Called before a rank registers in any wait structure, so a
  /// dead rank is never counted as a collective arrival or left blocked.
  void check_fault(unsigned rank);

  // -- fault-tolerance internals (FT mode only) ---------------------------
  /// Raise ft::RevokedError if the communicator is revoked (entry check of
  /// every plain communication call; internal FT operations bypass it).
  void check_revoked(unsigned rank) const;
  /// FT: `rank` is about to communicate with dead `peer` — bill the
  /// detection latency and raise ft::ProcFailedError. No-op without FT.
  void detect_failed_peer(unsigned rank, unsigned peer);
  /// Consume a proc_failed wake: bill detection, log first detections of
  /// every dead group member, raise ft::ProcFailedError.
  [[noreturn]] void raise_proc_failed(unsigned rank);
  /// Record the first detection of `node`'s death (dedup per node).
  void note_detection(unsigned rank, unsigned node);
  /// Revoke the communicator on behalf of `rank`: wake every plain-blocked
  /// rank into RevokedError and reset a pending plain collective.
  void revoke_comm(unsigned rank, cycles_t cost);
  /// Install the survivor communicator (shrink combine): new group, epoch
  /// bump, revocation cleared.
  void apply_shrink(std::vector<unsigned> group, cycles_t when, cycles_t cost);
  /// Distinct live nodes across the current group (shrunk tree size).
  [[nodiscard]] unsigned live_comm_nodes() const;
  /// True if `rank`'s status is terminal-dead (kDied).
  [[nodiscard]] bool rank_died(unsigned rank) const {
    return ranks_[rank]->status == Status::kDied;
  }

  void thread_main(unsigned rank, const RankFn& program);
  [[nodiscard]] int pick_next() const;

  MachineConfig config_;
  std::unique_ptr<sys::Partition> partition_;
  opt::Compiler compiler_;
  MpiHooks hooks_;
  unsigned num_ranks_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::binary_semaphore sched_sem_{0};
  Collective collective_;
  fault::FaultInjector* fault_ = nullptr;
  std::vector<unsigned> dead_ranks_;
  std::vector<unsigned> stranded_ranks_;
  ft::FtParams ft_params_;
  bool revoked_ = false;
  std::vector<unsigned> comm_group_;   ///< current members, ascending
  std::vector<bool> in_group_;         ///< comm_group_ membership by rank
  unsigned comm_epoch_ = 0;
  std::vector<ft::RecoveryEvent> recovery_log_;
  std::vector<bool> death_detected_;  ///< per node, first-detection dedup
  bool aborting_ = false;
  bool ran_ = false;
};

/// Thrown inside rank threads to unwind them when another rank failed.
struct AbortRun {};

/// Thrown inside a rank thread when its node suffers an injected death (or,
/// with `inherited`, when the rank was blocked on a dead peer and the death
/// cascaded to it — FT mode converts that case into ft::ProcFailedError).
struct NodeDeathFault {
  unsigned node = 0;
  bool inherited = false;
};

}  // namespace bgp::rt
