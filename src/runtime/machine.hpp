// The execution machine: a Partition plus a deterministic scheduler and a
// message-passing runtime ("MiniMPI") with the semantics the NAS kernels
// need — blocking send/recv and the usual collectives.
//
// Two dispatchers produce bit-identical runs (MachineConfig::sched):
//
//  * kSerial — one OS thread per rank, exactly one running at any moment
//    (token passing through semaphores). The token always goes to the
//    runnable rank whose (core clock, rank) key is smallest, via a lazy
//    min-heap ready queue.
//  * kParallel — one *fiber* per rank multiplexed onto a bounded worker
//    pool (runtime/pool.*, runtime/epoch.*). Rank compute segments run
//    concurrently; every cross-rank interaction executes as an ordered
//    commit in exactly the serial dispatcher's (cycle, rank) order, so
//    simulated clocks, dumps and traces stay byte-identical.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <semaphore>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "compiler/compiler.hpp"
#include "ft/ftypes.hpp"
#include "runtime/sched.hpp"
#include "sys/partition.hpp"

namespace bgp::fault {
class FaultInjector;
}

namespace bgp::ft {
class FtComm;
}

namespace bgp::rt {

class RankCtx;
class EpochScheduler;

/// Collective op kinds for rendezvous matching. Kinds at or below
/// kCollFtFirst are internal fault-tolerance operations (agreement,
/// shrink): they are exempt from revocation and failed-peer flagging so
/// recovery itself can communicate on a revoked communicator. -1 is the
/// idle sentinel.
enum CollKind : int {
  kCollAgree = -3,
  kCollShrink = -2,
  kCollBarrier = 0,
  kCollBcast,
  kCollAllreduceSum,
  kCollAllreduceMax,
  kCollAlltoall,
  kCollAllgather,
};
inline constexpr int kCollFtFirst = kCollShrink;

/// Program run by every rank.
using RankFn = std::function<void(RankCtx&)>;

/// Hooks the performance-counter interface library installs around the MPI
/// lifecycle (paper §IV: BGP_Initialize/Start inside MPI_Init, BGP_Stop/
/// Finalize inside MPI_Finalize).
struct MpiHooks {
  std::function<void(RankCtx&)> on_init;
  std::function<void(RankCtx&)> on_finalize;
};

struct MachineConfig {
  unsigned num_nodes = 4;
  sys::OpMode mode = sys::OpMode::kVnm;
  sys::BootOptions boot{};
  /// Compiler option set the "application binaries" were built with.
  opt::OptConfig opt = opt::OptConfig{opt::OptLevel::kO5, false, true};
  /// Use fewer ranks than the partition supports (e.g. the paper's 121-rank
  /// SP/BT runs on 32 nodes). 0 = all.
  unsigned num_ranks_override = 0;
  /// Dispatcher selection; both produce byte-identical runs.
  SchedMode sched = SchedMode::kSerial;
  /// Parallel mode: worker-pool size cap. 0 = min(hardware_concurrency,
  /// nodes). The pool never exceeds the node count (the unit of
  /// parallelism is a node: its ranks share caches, so they execute
  /// exclusively).
  unsigned jobs = 0;
  /// Parallel mode: stack bytes per rank fiber.
  std::size_t fiber_stack_bytes = 1024 * 1024;
  /// Serial mode spawns one OS thread per rank; refuse configurations past
  /// this cap with a pointer at --sched=parallel (which needs one fiber
  /// per rank and worker threads only).
  unsigned max_rank_threads = 4096;
  /// Deliver per-class instruction events one virtual sink call at a time
  /// (the original path) instead of the precomputed per-block event
  /// vector. Identical counter totals; exists for identity tests and the
  /// before/after perf benches.
  bool legacy_block_events = false;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sys::Partition& partition() noexcept { return *partition_; }
  [[nodiscard]] const sys::Partition& partition() const noexcept {
    return *partition_;
  }
  [[nodiscard]] const opt::Compiler& compiler() const noexcept {
    return compiler_;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] unsigned num_ranks() const noexcept { return num_ranks_; }

  void set_mpi_hooks(MpiHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const MpiHooks& mpi_hooks() const noexcept { return hooks_; }

  /// Run `program` on every rank to completion. A Machine runs one program
  /// in its lifetime; failures in any rank abort the run and rethrow here.
  /// Injected node deaths do NOT abort: the dead node's ranks unwind, any
  /// rank blocked on them inherits the death (non-FT) or gets an error
  /// return to recover from (FT; see set_ft_params), and run() returns
  /// normally once the survivors finish (consult dead_ranks()/
  /// stranded_ranks()/dead_nodes()/recovery_log()).
  void run(const RankFn& program);

  /// Attach a fault-injection oracle (not owned; may be nullptr). Must be
  /// set before run().
  void set_fault_injector(fault::FaultInjector* fault) noexcept {
    fault_ = fault;
  }

  /// Enable ULFM-style failure handling (must be set before run()). With FT
  /// on, a call that would block forever on a dead peer raises
  /// ft::ProcFailedError after the modeled detection latency instead of
  /// inheriting the death, and ft::FtComm's revoke/agree/shrink become
  /// available for survivor recovery.
  void set_ft_params(const ft::FtParams& params) noexcept {
    ft_params_ = params;
  }
  [[nodiscard]] const ft::FtParams& ft_params() const noexcept {
    return ft_params_;
  }

  /// Ranks lost directly to injected node deaths, death order.
  [[nodiscard]] const std::vector<unsigned>& dead_ranks() const noexcept {
    return dead_ranks_;
  }
  /// Cascade victims: ranks that were blocked on a dead peer and inherited
  /// the death (non-FT mode only — under FT these survive via recovery).
  [[nodiscard]] const std::vector<unsigned>& stranded_ranks() const noexcept {
    return stranded_ranks_;
  }
  /// Nodes that lost at least one rank (injected or stranded), ascending.
  /// A node listed here never reaches BGP_Finalize, so its dump is missing.
  [[nodiscard]] std::vector<unsigned> dead_nodes() const;

  /// Current (post-shrink) communicator membership, ascending global ranks.
  [[nodiscard]] const std::vector<unsigned>& comm_group() const noexcept {
    return comm_group_;
  }
  /// Number of shrinks performed so far.
  [[nodiscard]] unsigned comm_epoch() const noexcept { return comm_epoch_; }
  /// Whether the communicator is currently revoked (between a survivor's
  /// revoke() and the shrink that installs the new group).
  [[nodiscard]] bool comm_revoked() const noexcept { return revoked_; }
  /// Every recovery step taken so far, in completion order. Copied into
  /// each surviving node's dump at finalize (dump v3).
  [[nodiscard]] const std::vector<ft::RecoveryEvent>& recovery_log()
      const noexcept {
    return recovery_log_;
  }

  /// Longest per-node execution time (max over cores), after run().
  [[nodiscard]] cycles_t node_time(unsigned node) const;
  /// Longest execution time across the whole partition.
  [[nodiscard]] cycles_t elapsed() const;

  /// Ask a running program to stop at the next scheduling point. Safe from
  /// any thread and from signal handlers (a single lock-free atomic store):
  /// the dispatcher notices, unwinds every rank, and run() throws
  /// RunStopped — after which traces can be sealed and checkpoint dumps
  /// written through the usual atomic paths. A no-op once the run is over;
  /// requesting a stop before run() stops it at the first dispatch.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_relaxed);
  }

 private:
  friend class RankCtx;
  friend class ft::FtComm;
  friend class EpochScheduler;

  enum class Status : u8 {
    kReady,
    kBlockedRecv,
    kBlockedCollective,
    kFinished,
    kFailed,
    kDied,  ///< lost to an injected node death (terminal, not an error)
  };

  struct Message {
    unsigned src = 0;
    int tag = 0;
    std::vector<std::byte> payload;
    cycles_t ready_time = 0;
  };

  /// Per-rank bookkeeping (scheduling state, mailbox; the thread is only
  /// used by the serial dispatcher — the parallel one runs fibers).
  struct Rank {
    std::unique_ptr<RankCtx> ctx;
    std::thread thread;
    std::binary_semaphore go{0};
    /// Atomic because the parallel dispatcher's commits write statuses
    /// under its lock while rank fibers read them lock-free (e.g.
    /// rank_died() on the send path).
    std::atomic<Status> status{Status::kReady};
    // recv match spec while blocked
    unsigned recv_src = 0;
    int recv_tag = 0;
    std::deque<Message> mailbox;
    std::exception_ptr error;
    /// Set by the scheduler when the rank is blocked on a dead peer; the
    /// next resume throws NodeDeathFault so the rank unwinds too (non-FT).
    bool peer_dead = false;
    /// FT mode: the rank's pending call involved a failed peer; the next
    /// resume bills the detection latency and raises ft::ProcFailedError.
    bool proc_failed = false;
    /// FT mode: a survivor revoked the communicator while this rank was
    /// blocked; the next resume raises ft::RevokedError.
    bool revoked_wake = false;
  };

  /// In-flight collective rendezvous.
  struct Collective {
    int kind = -1;  ///< first arriver's op kind; later arrivals must match
    u64 bytes = 0;
    unsigned root = 0;
    unsigned arrived = 0;
    /// Arrivals that complete the operation inline (FT: live group members
    /// at first arrival; otherwise all ranks — dead members complete via
    /// the scheduler's stall resolution instead).
    unsigned expected = 0;
    /// Internal FT operation (agree/shrink): exempt from revocation and
    /// from failed-peer flagging, so recovery itself can communicate.
    bool internal = false;
    cycles_t max_arrival = 0;
    struct Member {
      std::span<const std::byte> send;
      std::span<std::byte> recv;
      bool present = false;
    };
    std::vector<Member> members;
    /// Stored from the first arrival so the scheduler can complete the
    /// operation over the surviving members when dead ranks never show up.
    std::function<void(Collective&)> combine;
    cycles_t op_latency = 0;
  };

  /// Shared stall handling: what the dispatcher found when no rank was
  /// runnable, after resolution had a chance to make progress.
  enum class StallOutcome : u8 {
    kProgress,      ///< woke someone / completed a collective — keep going
    kAllDone,       ///< every rank is terminal
    kDeadlock,      ///< no failure but nobody can run; blocked ranks woken
                    ///< to unwind, diag describes the wait graph
    kAbortFailure,  ///< a rank failed; blocked ranks woken to unwind
  };

  // -- scheduler internals (called from rank threads/fibers via RankCtx) --
  /// Give the token back to the scheduler and wait to be resumed
  /// (serial dispatcher only).
  void yield_from(unsigned rank);
  /// End-of-segment yield: re-key this rank at its current clock and let
  /// the dispatcher run whoever is next.
  void yield_rank(unsigned rank);
  /// Park after a commit left this rank in a blocked status; returns when
  /// a later commit makes it ready again.
  void block_rank(unsigned rank);
  /// Execute `fn` at this rank's deterministic commit slot: the serial
  /// dispatcher runs it inline (the token already serializes); the
  /// parallel one parks the fiber until every earlier (cycle, rank) slot
  /// has committed. Exceptions from `fn` resurface on the calling rank.
  void run_at_slot(unsigned rank, const std::function<void()>& fn);
  /// Abort/death/revocation flags left on this rank by the scheduler while
  /// it was parked; throws the corresponding error.
  void consume_wake_flags(unsigned rank);
  /// Transition `rank` to kReady and tell the active dispatcher.
  void make_ready(unsigned rank);
  /// Record a rank lost to a node death (status, death lists, obs instant).
  void record_rank_death(unsigned rank, bool inherited);
  /// True when global state may be read mid-segment (fault injection or FT
  /// recovery): the parallel dispatcher then runs at most one rank at a
  /// time, in exactly serial order.
  [[nodiscard]] bool strict_sched() const noexcept {
    return fault_ != nullptr || ft_params_.enabled;
  }
  /// No rank is runnable: resolve dead-peer waits / survivor collectives,
  /// or declare the run over/deadlocked. Wakes ranks via make_ready.
  StallOutcome resolve_stall(std::string& diag);
  /// Honor a pending request_stop(): flip the machine into the abort path
  /// and wake blocked ranks so they unwind. Returns true when a stop was
  /// serviced. Dispatcher context only (serial loop, or under the epoch
  /// scheduler's lock — make_ready has the same requirement).
  bool service_stop();

  /// Deposit a message; wakes a matching blocked receiver. Commit context.
  void deposit(Message msg, unsigned dst);
  /// Try to pop a matching message from `rank`'s mailbox. Commit context.
  std::optional<Message> try_match(unsigned rank, unsigned src, int tag);
  /// Enter a collective; blocks until all ranks arrived, then the last
  /// arrival runs `combine` over the member buffers and releases all.
  void enter_collective(unsigned rank, int kind, u64 bytes, unsigned root,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv,
                        const std::function<void(Collective&)>& combine,
                        cycles_t op_latency);

  /// Run the pending collective's combine over the members that arrived,
  /// sync live cores to the completion time and release the waiters.
  void finish_collective();
  /// Throw NodeDeathFault if `rank`'s node is past its injected death
  /// cycle. Called before a rank registers in any wait structure, so a
  /// dead rank is never counted as a collective arrival or left blocked.
  void check_fault(unsigned rank);

  /// Lower `desc` under the machine's option set, memoized per Machine:
  /// every rank re-lowers identical loop nests every timestep, so cache
  /// the bundles keyed by the full LoopDesc contents (the OptConfig is
  /// fixed for a Machine's lifetime and needs no key bits).
  const opt::CompiledLoop& compile_cached(const isa::LoopDesc& desc);

  // -- fault-tolerance internals (FT mode only) ---------------------------
  /// Raise ft::RevokedError if the communicator is revoked (entry check of
  /// every plain communication call; internal FT operations bypass it).
  void check_revoked(unsigned rank) const;
  /// FT: `rank` is about to communicate with dead `peer` — bill the
  /// detection latency and raise ft::ProcFailedError. No-op without FT.
  void detect_failed_peer(unsigned rank, unsigned peer);
  /// Consume a proc_failed wake: bill detection, log first detections of
  /// every dead group member, raise ft::ProcFailedError.
  [[noreturn]] void raise_proc_failed(unsigned rank);
  /// Record the first detection of `node`'s death (dedup per node).
  void note_detection(unsigned rank, unsigned node);
  /// Revoke the communicator on behalf of `rank`: wake every plain-blocked
  /// rank into RevokedError and reset a pending plain collective.
  void revoke_comm(unsigned rank, cycles_t cost);
  /// Install the survivor communicator (shrink combine): new group, epoch
  /// bump, revocation cleared.
  void apply_shrink(std::vector<unsigned> group, cycles_t when, cycles_t cost);
  /// Distinct live nodes across the current group (shrunk tree size).
  [[nodiscard]] unsigned live_comm_nodes() const;
  /// True if `rank`'s status is terminal-dead (kDied).
  [[nodiscard]] bool rank_died(unsigned rank) const {
    return ranks_[rank]->status == Status::kDied;
  }

  void thread_main(unsigned rank, const RankFn& program);
  void run_serial(const RankFn& program);
  /// Shared run() tail: rethrow rank errors / aborts, log degraded runs.
  void run_epilogue();

  MachineConfig config_;
  std::unique_ptr<sys::Partition> partition_;
  opt::Compiler compiler_;
  MpiHooks hooks_;
  unsigned num_ranks_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  /// Serial dispatcher: rank threads hand the token back through this.
  /// Counting (not binary) so the abort path can batch-release every
  /// waiter and collect the returns in one sweep.
  std::counting_semaphore<1 << 20> sched_sem_{0};
  /// Serial dispatcher's ready queue (satellite of the same (cycle, rank)
  /// order the parallel dispatcher commits in).
  ReadyQueue ready_q_;
  /// Parallel dispatcher, non-null only inside run().
  EpochScheduler* epoch_ = nullptr;
  Collective collective_;
  fault::FaultInjector* fault_ = nullptr;
  std::vector<unsigned> dead_ranks_;
  std::vector<unsigned> stranded_ranks_;
  ft::FtParams ft_params_;
  bool revoked_ = false;
  std::vector<unsigned> comm_group_;   ///< current members, ascending
  std::vector<bool> in_group_;         ///< comm_group_ membership by rank
  unsigned comm_epoch_ = 0;
  std::vector<ft::RecoveryEvent> recovery_log_;
  std::vector<bool> death_detected_;  ///< per node, first-detection dedup
  std::atomic<bool> aborting_{false};
  std::atomic<bool> stop_requested_{false};
  bool ran_ = false;
  /// compile_cached state: the cached bundle owns a copy of the loop name
  /// so its string_view cannot dangle when the descriptor was a temporary.
  struct CachedLoop {
    std::string name;
    opt::CompiledLoop cl;
  };
  std::unordered_map<std::string, std::unique_ptr<CachedLoop>> loop_cache_;
  std::mutex loop_cache_mu_;
};

/// Thrown inside rank threads to unwind them when another rank failed.
struct AbortRun {};

/// Thrown out of Machine::run() when the program was cancelled through
/// request_stop() (operator signal, daemon kill). Not an error: the caller
/// decides whether to checkpoint-dump the partial run.
struct RunStopped {};

/// Thrown inside a rank thread when its node suffers an injected death (or,
/// with `inherited`, when the rank was blocked on a dead peer and the death
/// cascaded to it — FT mode converts that case into ft::ProcFailedError).
struct NodeDeathFault {
  unsigned node = 0;
  bool inherited = false;
};

}  // namespace bgp::rt
