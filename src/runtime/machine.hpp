// The execution machine: a Partition plus a deterministic cooperative
// scheduler and a message-passing runtime ("MiniMPI") with the semantics
// the NAS kernels need — blocking send/recv and the usual collectives.
//
// Concurrency model: one OS thread per rank, but exactly one runs at any
// moment (token passing through semaphores). The scheduler always resumes
// the runnable rank whose core clock is furthest behind, so simulated time
// across the cores of a node advances in lockstep-ish fashion and shared
// L3/DDR contention emerges naturally. Runs are bit-deterministic.
#pragma once

#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <semaphore>
#include <span>
#include <thread>
#include <vector>

#include "compiler/compiler.hpp"
#include "sys/partition.hpp"

namespace bgp::fault {
class FaultInjector;
}

namespace bgp::rt {

class RankCtx;

/// Program run by every rank.
using RankFn = std::function<void(RankCtx&)>;

/// Hooks the performance-counter interface library installs around the MPI
/// lifecycle (paper §IV: BGP_Initialize/Start inside MPI_Init, BGP_Stop/
/// Finalize inside MPI_Finalize).
struct MpiHooks {
  std::function<void(RankCtx&)> on_init;
  std::function<void(RankCtx&)> on_finalize;
};

struct MachineConfig {
  unsigned num_nodes = 4;
  sys::OpMode mode = sys::OpMode::kVnm;
  sys::BootOptions boot{};
  /// Compiler option set the "application binaries" were built with.
  opt::OptConfig opt = opt::OptConfig{opt::OptLevel::kO5, false, true};
  /// Use fewer ranks than the partition supports (e.g. the paper's 121-rank
  /// SP/BT runs on 32 nodes). 0 = all.
  unsigned num_ranks_override = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sys::Partition& partition() noexcept { return *partition_; }
  [[nodiscard]] const sys::Partition& partition() const noexcept {
    return *partition_;
  }
  [[nodiscard]] const opt::Compiler& compiler() const noexcept {
    return compiler_;
  }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] unsigned num_ranks() const noexcept { return num_ranks_; }

  void set_mpi_hooks(MpiHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const MpiHooks& mpi_hooks() const noexcept { return hooks_; }

  /// Run `program` on every rank to completion. A Machine runs one program
  /// in its lifetime; failures in any rank abort the run and rethrow here.
  /// Injected node deaths do NOT abort: the dead node's ranks unwind, any
  /// rank blocked on them inherits the death, and run() returns normally
  /// once the survivors finish (consult dead_ranks()/dead_nodes()).
  void run(const RankFn& program);

  /// Attach a fault-injection oracle (not owned; may be nullptr). Must be
  /// set before run().
  void set_fault_injector(fault::FaultInjector* fault) noexcept {
    fault_ = fault;
  }

  /// Ranks lost to injected node deaths (including cascades), death order.
  [[nodiscard]] const std::vector<unsigned>& dead_ranks() const noexcept {
    return dead_ranks_;
  }
  /// Nodes that lost at least one rank, ascending. A node listed here never
  /// reaches BGP_Finalize, so its dump file is missing.
  [[nodiscard]] std::vector<unsigned> dead_nodes() const;

  /// Longest per-node execution time (max over cores), after run().
  [[nodiscard]] cycles_t node_time(unsigned node) const;
  /// Longest execution time across the whole partition.
  [[nodiscard]] cycles_t elapsed() const;

 private:
  friend class RankCtx;

  enum class Status : u8 {
    kReady,
    kBlockedRecv,
    kBlockedCollective,
    kFinished,
    kFailed,
    kDied,  ///< lost to an injected node death (terminal, not an error)
  };

  struct Message {
    unsigned src = 0;
    int tag = 0;
    std::vector<std::byte> payload;
    cycles_t ready_time = 0;
  };

  /// Per-rank bookkeeping (thread, scheduling state, mailbox).
  struct Rank {
    std::unique_ptr<RankCtx> ctx;
    std::thread thread;
    std::binary_semaphore go{0};
    Status status = Status::kReady;
    // recv match spec while blocked
    unsigned recv_src = 0;
    int recv_tag = 0;
    std::deque<Message> mailbox;
    std::exception_ptr error;
    /// Set by the scheduler when the rank is blocked on a dead peer; the
    /// next resume throws NodeDeathFault so the rank unwinds too.
    bool peer_dead = false;
  };

  /// In-flight collective rendezvous.
  struct Collective {
    int kind = -1;  ///< first arriver's op kind; later arrivals must match
    u64 bytes = 0;
    unsigned root = 0;
    unsigned arrived = 0;
    cycles_t max_arrival = 0;
    struct Member {
      std::span<const std::byte> send;
      std::span<std::byte> recv;
      bool present = false;
    };
    std::vector<Member> members;
    /// Stored from the first arrival so the scheduler can complete the
    /// operation over the surviving members when dead ranks never show up.
    std::function<void(Collective&)> combine;
    cycles_t op_latency = 0;
  };

  // -- scheduler internals (called from rank threads via RankCtx) ---------
  /// Give the token back to the scheduler and wait to be resumed.
  void yield_from(unsigned rank);
  /// Deposit a message; wakes a matching blocked receiver.
  void deposit(Message msg, unsigned dst);
  /// Try to pop a matching message from `rank`'s mailbox.
  std::optional<Message> try_match(unsigned rank, unsigned src, int tag);
  /// Enter a collective; blocks (yields) until all ranks arrived, then the
  /// last arrival runs `combine` over the member buffers and releases all.
  void enter_collective(unsigned rank, int kind, u64 bytes, unsigned root,
                        std::span<const std::byte> send,
                        std::span<std::byte> recv,
                        const std::function<void(Collective&)>& combine,
                        cycles_t op_latency);

  /// Run the pending collective's combine over the members that arrived,
  /// sync live cores to the completion time and release the waiters.
  void finish_collective();
  /// Throw NodeDeathFault if `rank`'s node is past its injected death
  /// cycle. Called before a rank registers in any wait structure, so a
  /// dead rank is never counted as a collective arrival or left blocked.
  void check_fault(unsigned rank);

  void thread_main(unsigned rank, const RankFn& program);
  [[nodiscard]] int pick_next() const;

  MachineConfig config_;
  std::unique_ptr<sys::Partition> partition_;
  opt::Compiler compiler_;
  MpiHooks hooks_;
  unsigned num_ranks_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::binary_semaphore sched_sem_{0};
  Collective collective_;
  fault::FaultInjector* fault_ = nullptr;
  std::vector<unsigned> dead_ranks_;
  bool aborting_ = false;
  bool ran_ = false;
};

/// Thrown inside rank threads to unwind them when another rank failed.
struct AbortRun {};

/// Thrown inside a rank thread when its node suffers an injected death (or
/// when the rank is blocked on a dead peer and inherits the death).
struct NodeDeathFault {
  unsigned node = 0;
};

}  // namespace bgp::rt
