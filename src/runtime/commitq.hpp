// Lock-free MPSC transition queue for the parallel epoch scheduler.
//
// Rank fibers used to block on the scheduler mutex at *every* segment
// boundary (yield/park/block), even when the scheduler was busy — a lock
// round-trip per cross-rank commit. With the queue, a fiber that fails a
// try_lock publishes its phase transition here (one CAS) and parks; the
// current lock holder pumps the queue under the mutex and applies the
// transitions before making any scheduling decision. All scheduler state
// is still mutated only under the mutex, so the commit-order theorem (and
// TSan-cleanliness) is untouched — the queue only removes the blocking
// handoff.
//
// Shape: a Treiber push / exchange-take-all MPSC stack of intrusive,
// per-rank nodes.
//  * Each rank owns exactly one node and parks immediately after pushing
//    it, so a node is never re-pushed before the consumer detached it —
//    reuse is safe and no ABA hazard exists (nodes are only taken
//    wholesale, never popped individually).
//  * take_all() detaches the entire list with one exchange; entries are
//    for distinct ranks, so application order within a batch is
//    irrelevant (commit *execution* order is decided separately, by the
//    (cycle, rank) scan under the mutex).
//  * Progress: a push is always followed by that fiber's park, which
//    returns control to its node executor, which locks the mutex and
//    pumps — so no transition can be stranded even if another holder's
//    pump raced ahead of the push.
#pragma once

#include <atomic>
#include <functional>

#include "common/types.hpp"

namespace bgp::rt {

/// What a queued fiber wants done to its scheduling state. Blocking
/// (kBlocked) is deliberately *not* queueable: a wake (`on_ready`) for a
/// rank whose block transition was still unpumped would see it kRunning
/// and be dropped, stranding the fiber — so block_fiber keeps the plain
/// mutex (blocks are rare; yields and slot parks are the hot paths).
enum class CommitOp : u8 {
  kParkSlot,      ///< enter kParkedSlot with `fn` as the pending commit
  kYieldSegment,  ///< re-key at `key`, enter kStartable
};

/// One rank's (single, reusable) queue entry.
struct CommitNode {
  std::atomic<CommitNode*> next{nullptr};
  unsigned rank = 0;
  CommitOp op = CommitOp::kYieldSegment;
  cycles_t key = 0;
  const std::function<void()>* fn = nullptr;
};

class CommitQueue {
 public:
  /// Publish `n` (payload fields already written by the owning fiber).
  /// Lock-free; safe from any thread.
  void push(CommitNode* n) noexcept {
    CommitNode* old = head_.load(std::memory_order_relaxed);
    do {
      n->next.store(old, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(old, n, std::memory_order_release,
                                          std::memory_order_relaxed));
  }

  /// Detach every queued node (LIFO order; entries are per-rank
  /// independent so order does not matter). Consumer must hold the
  /// scheduler mutex; payload reads are ordered by the acquire exchange.
  [[nodiscard]] CommitNode* take_all() noexcept {
    return head_.exchange(nullptr, std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

 private:
  std::atomic<CommitNode*> head_{nullptr};
};

}  // namespace bgp::rt
