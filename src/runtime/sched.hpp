// Shared scheduling primitives for the two Machine dispatchers.
//
// Both the serial token-passing scheduler and the parallel epoch scheduler
// order work by the same key: (simulated cycle at segment start, rank),
// lowest first with the lower rank winning ties — exactly what the old
// O(ranks) pick_next scan computed. ReadyQueue packages that order as a
// lazy-deletion binary min-heap: pushes are O(log n), stale entries (a
// rank that was re-keyed or is no longer ready) are skipped at pop time
// by checking a per-rank sequence number stamped into each entry.
#pragma once

#include <cstddef>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace bgp::rt {

/// Dispatcher selection (MachineConfig::sched).
enum class SchedMode : u8 {
  kSerial,    ///< one thread per rank, token passing (the oracle)
  kParallel,  ///< bounded worker pool + fibers, ordered interaction commits
};

/// The dispatch key: ranks run in ascending (cycle, rank) order.
struct SchedKey {
  cycles_t cycle = 0;
  unsigned rank = 0;

  friend bool operator<(const SchedKey& a, const SchedKey& b) noexcept {
    return a.cycle != b.cycle ? a.cycle < b.cycle : a.rank < b.rank;
  }
  friend bool operator<=(const SchedKey& a, const SchedKey& b) noexcept {
    return !(b < a);
  }
};

/// Lazy-deletion min-heap over (cycle, rank). The caller owns a per-rank
/// sequence counter: push() stamps the current sequence into the entry and
/// pop_min() hands back candidates for validation — an entry whose stamp
/// no longer matches the rank's sequence is dead and silently dropped.
class ReadyQueue {
 public:
  ReadyQueue() = default;
  explicit ReadyQueue(std::size_t num_ranks) : seq_(num_ranks, 0) {}

  /// (Re)size for `num_ranks` ranks, dropping any queued entries.
  void reset(std::size_t num_ranks) {
    seq_.assign(num_ranks, 0);
    heap_ = {};
  }

  /// Invalidate every queued entry for `rank` and stamp the next push.
  void invalidate(unsigned rank) noexcept { ++seq_[rank]; }

  /// Queue `rank` at `cycle` under its current sequence.
  void push(cycles_t cycle, unsigned rank) {
    heap_.push(Entry{SchedKey{cycle, rank}, seq_[rank]});
  }

  /// Pop the minimal live entry; returns false when the queue is empty of
  /// live entries. `live` is the caller's validity check (e.g. "status is
  /// still kReady") applied on top of the sequence stamp.
  template <typename LiveFn>
  bool pop_min(unsigned& rank_out, LiveFn&& live) {
    if (!peek_min(rank_out, live)) return false;
    heap_.pop();
    return true;
  }

  /// Like pop_min but leaves the minimal live entry queued (stale entries
  /// above it are still discarded).
  template <typename LiveFn>
  bool peek_min(unsigned& rank_out, LiveFn&& live) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      if (top.seq != seq_[top.key.rank] || !live(top.key.rank)) {
        heap_.pop();  // re-keyed, re-queued, or no longer ready: stale
        continue;
      }
      rank_out = top.key.rank;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

 private:
  struct Entry {
    SchedKey key;
    u64 seq;
    friend bool operator>(const Entry& a, const Entry& b) noexcept {
      return b.key < a.key;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<u64> seq_;
};

}  // namespace bgp::rt
