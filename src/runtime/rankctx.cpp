#include "runtime/rankctx.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/strfmt.hpp"
#include "runtime/obs_scope.hpp"

namespace bgp::rt {

namespace {

/// Per-rank private region: 256 MB at (core+1)*256MB in the node space.
constexpr addr_t kRankRegionBytes = addr_t{256} * MiB;

}  // namespace

RankCtx::RankCtx(Machine& machine, unsigned rank)
    : machine_(machine),
      rank_(rank),
      placement_(machine.partition().placement(rank)) {
  alloc_next_ = kRankRegionBytes * (placement_.core + 1);
  alloc_limit_ = alloc_next_ + kRankRegionBytes;
}

addr_t RankCtx::allocate_bytes(u64 bytes) {
  const addr_t base = alloc_next_;
  const u64 padded = (bytes + 127) & ~u64{127};
  if (base + padded > alloc_limit_) {
    throw std::runtime_error(
        strfmt("rank %u: simulated heap exhausted (%llu bytes requested)",
               rank_, static_cast<unsigned long long>(bytes)));
  }
  alloc_next_ = base + padded;
  return base;
}

void RankCtx::pulse_node() {
  sys::Node& n = node();
  if (!n.has_pulse_hook()) return;
  const cycles_t overhead = n.pulse(core().now());
  if (overhead > 0) core().advance(overhead);
}

void RankCtx::sys_event(isa::SysEvent e, u64 count) {
  mem::emit(node().sink(), isa::ev::system(e, placement_.local_proc), count);
}

void RankCtx::wait_until(cycles_t t) {
  const cycles_t now_c = core().now();
  if (t > now_c) {
    core().wait(t - now_c);
    sys_event(isa::SysEvent::kMpiWaitCycles, t - now_c);
  }
}

// ---- lifecycle -------------------------------------------------------------

void RankCtx::mpi_init() {
  if (machine_.mpi_hooks().on_init) {
    // Hooks come from the tools and may touch shared state (counter
    // registries, output files); run them at this rank's commit slot.
    machine_.run_at_slot(rank_, [this] { machine_.mpi_hooks().on_init(*this); });
  }
  barrier();
}

void RankCtx::mpi_finalize() {
  barrier();
  if (machine_.mpi_hooks().on_finalize) {
    machine_.run_at_slot(rank_,
                         [this] { machine_.mpi_hooks().on_finalize(*this); });
  }
}

// ---- computation ------------------------------------------------------------

void RankCtx::loop(const isa::LoopDesc& desc,
                   std::initializer_list<MemRange> ranges) {
  loop(desc, std::span<const MemRange>(ranges.begin(), ranges.size()));
}

void RankCtx::loop(const isa::LoopDesc& desc,
                   std::span<const MemRange> ranges) {
  machine_.check_fault(rank_);
  const opt::CompiledLoop& cl = machine_.compile_cached(desc);
  if (machine_.config().legacy_block_events) {
    core().execute(cl.ops);
  } else {
    core().execute_block(cl.ops, cl.core_events[core().id()]);
  }
  for (const MemRange& r : ranges) {
    touch_no_yield(r, cl.mem_overlap);
  }
  yield();
}

unsigned RankCtx::num_threads() const noexcept {
  return sys::threads_per_process(machine_.partition().mode());
}

void RankCtx::parallel_loop(const isa::LoopDesc& desc,
                            std::initializer_list<MemRange> ranges,
                            unsigned nthreads) {
  parallel_loop(desc, std::span<const MemRange>(ranges.begin(), ranges.size()),
                nthreads);
}

void RankCtx::parallel_loop(const isa::LoopDesc& desc,
                            std::span<const MemRange> ranges,
                            unsigned nthreads) {
  const unsigned team_max = num_threads();
  if (nthreads == 0) nthreads = team_max;
  if (nthreads > team_max) {
    throw std::invalid_argument(
        strfmt("parallel_loop: %u threads but the process owns %u cores",
               nthreads, team_max));
  }
  if (nthreads == 1) {
    loop(desc, ranges);
    return;
  }
  machine_.check_fault(rank_);

  /// Fork/join overhead per parallel region (thread wake + barrier).
  constexpr cycles_t kForkJoin = 800;
  auto& node_ref = node();
  const unsigned base_core = placement_.core;

  // The master forks from its current time; workers cannot start earlier.
  cycles_t fork_time = node_ref.core(base_core).now();
  cycles_t join_time = 0;
  for (unsigned t = 0; t < nthreads; ++t) {
    cpu::Core& core = node_ref.core(base_core + t);
    core.sync_to(fork_time);

    isa::LoopDesc slice = desc;
    slice.trip = desc.trip / nthreads +
                 (t < desc.trip % nthreads ? 1 : 0);
    const opt::CompiledLoop& cl = machine_.compile_cached(slice);
    if (machine_.config().legacy_block_events) {
      core.execute(cl.ops);
    } else {
      core.execute_block(cl.ops, cl.core_events[core.id()]);
    }

    // Static range split: thread t walks its contiguous slice through the
    // *shared* node caches from its own core.
    for (const MemRange& r : ranges) {
      const u64 chunk = r.bytes / nthreads;
      const MemRange sub{r.addr + t * chunk,
                         t + 1 == nthreads ? r.bytes - t * chunk : chunk,
                         r.write};
      if (sub.bytes == 0) continue;
      const auto res =
          sub.write
              ? node_ref.memory().write(base_core + t, sub.addr, sub.bytes,
                                        core.now())
              : node_ref.memory().read(base_core + t, sub.addr, sub.bytes,
                                       core.now());
      const auto& l1 = node_ref.memory().params().l1d;
      const u64 lines = sub.bytes / l1.line_bytes + 2;
      const cycles_t baseline = lines * l1.hit_latency;
      if (res.latency > baseline && cl.mem_overlap > 0.0) {
        core.stall(static_cast<cycles_t>(std::llround(
            static_cast<double>(res.latency - baseline) / cl.mem_overlap)));
      }
    }
    join_time = std::max(join_time, core.now());
  }
  // Join barrier: every team member reaches the max, master pays fork/join.
  for (unsigned t = 0; t < nthreads; ++t) {
    node_ref.core(base_core + t).sync_to(join_time);
  }
  node_ref.core(base_core).advance(kForkJoin);
  yield();
}

void RankCtx::touch_no_yield(const MemRange& r, double overlap) {
  if (r.bytes == 0) return;
  auto& memory = node().memory();
  const auto res = r.write
                       ? memory.write(core_id(), r.addr, r.bytes, core().now())
                       : memory.read(core_id(), r.addr, r.bytes, core().now());
  // The L1-hit portion of the walk is already covered by LSU occupancy in
  // the compute model; only the excess is an exposed stall, discounted by
  // the loop's memory-level parallelism.
  const auto& l1 = memory.params().l1d;
  const u64 lines = r.bytes / l1.line_bytes + 2;
  const cycles_t baseline = lines * l1.hit_latency;
  if (res.latency > baseline && overlap > 0.0) {
    core().stall(static_cast<cycles_t>(
        std::llround(static_cast<double>(res.latency - baseline) / overlap)));
  }
}

void RankCtx::touch(const MemRange& range, double overlap) {
  machine_.check_fault(rank_);
  touch_no_yield(range, overlap);
  yield();
}

void RankCtx::gather(addr_t base, std::span<const u32> indices, u32 elem_bytes,
                     bool write) {
  machine_.check_fault(rank_);
  auto& memory = node().memory();
  const cycles_t l1_hit = memory.params().l1d.hit_latency;
  cycles_t stall = 0;
  for (const u32 idx : indices) {
    const addr_t a = base + addr_t{idx} * elem_bytes;
    const auto res = write ? memory.write(core_id(), a, elem_bytes, core().now())
                           : memory.read(core_id(), a, elem_bytes, core().now());
    if (res.latency > l1_hit) stall += res.latency - l1_hit;
  }
  // Gathers expose most of their latency (little MLP).
  core().stall(static_cast<cycles_t>(static_cast<double>(stall) / 1.2));
  yield();
}

// ---- point-to-point ---------------------------------------------------------

cycles_t RankCtx::transfer_cycles(unsigned peer_node, u64 bytes) const {
  auto& part = const_cast<Machine&>(machine_).partition();
  if (peer_node == placement_.node) {
    // Intra-node: a memory-to-memory copy through the shared L3.
    return 300 + bytes / 8;
  }
  return part.torus().transfer_cycles(placement_.node, peer_node, bytes);
}

void RankCtx::send(unsigned dst, std::span<const std::byte> data, int tag) {
  if (dst >= size()) {
    throw std::out_of_range(strfmt("send to invalid rank %u", dst));
  }
  machine_.check_fault(rank_);
  machine_.check_revoked(rank_);
  if (machine_.rank_died(dst)) {
    // FT: a send to a failed peer is detected at the sender (it raises
    // ProcFailedError there); without FT the message is deposited into the
    // dead rank's mailbox and simply never consumed, as before. Detection
    // appends to the shared recovery log, so it commits.
    machine_.run_at_slot(rank_,
                         [this, dst] { machine_.detect_failed_peer(rank_, dst); });
  }
  sys_event(isa::SysEvent::kMpiSends);
  const auto peer = machine_.partition().placement(dst);

  // Software overhead; the injection DMA's memory reads are charged by the
  // caller when it touches its send buffer.
  core().advance(machine_.partition().torus().params().sw_overhead);
  Machine::Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload.assign(data.begin(), data.end());
  msg.ready_time = core().now() + transfer_cycles(peer.node, data.size());

  // Link accounting and the deposit (which may wake the receiver) touch
  // cross-rank state: one commit, in the same order the serial dispatcher
  // interleaves them.
  machine_.run_at_slot(rank_, [&] {
    if (peer.node != placement_.node) {
      machine_.partition().torus().record_transfer(placement_.node, peer.node,
                                                   data.size());
    }
    machine_.deposit(std::move(msg), dst);
  });
  yield();
}

void RankCtx::recv(unsigned src, std::span<std::byte> out, int tag) {
  machine_.check_fault(rank_);
  machine_.check_revoked(rank_);
  sys_event(isa::SysEvent::kMpiRecvs);
  core().advance(machine_.partition().torus().params().sw_overhead);
  for (;;) {
    // Match-or-block is one commit: if a concurrent sender's deposit could
    // slip between a failed match and the transition to kBlockedRecv, the
    // wake would be missed. The tracing pulse is billed inside the commit
    // too so the frozen blocked clock includes it, exactly as the serial
    // dispatcher sees it.
    std::optional<Machine::Message> msg;
    bool blocked = false;
    machine_.run_at_slot(rank_, [&] {
      msg = machine_.try_match(rank_, src, tag);
      if (msg.has_value()) return;
      // FT: a recv that can never match because the source already failed
      // is detected here (ULFM semantics: messages sent before the death
      // are still delivered above; only then does the failure surface).
      if (src != kAnySource && machine_.rank_died(src)) {
        machine_.detect_failed_peer(rank_, src);
      }
      auto& self = *machine_.ranks_[rank_];
      self.status = Machine::Status::kBlockedRecv;
      self.recv_src = src;
      self.recv_tag = tag;
      blocked = true;
      pulse_node();
    });
    if (msg.has_value()) {
      if (msg->payload.size() != out.size()) {
        throw std::runtime_error(
            strfmt("rank %u: recv size mismatch (got %zu, want %zu)", rank_,
                   msg->payload.size(), out.size()));
      }
      wait_until(msg->ready_time);
      std::memcpy(out.data(), msg->payload.data(), out.size());
      yield();
      return;
    }
    if (blocked) machine_.block_rank(rank_);
  }
}

void RankCtx::sendrecv(unsigned peer, std::span<const std::byte> out,
                       std::span<std::byte> in, int tag) {
  // Eager sends never block, so send-then-recv is deadlock-free.
  send(peer, out, tag);
  recv(peer, in, tag);
}

// ---- collectives -------------------------------------------------------------

cycles_t RankCtx::coll_op_cycles(u64 bytes) const {
  auto& part = const_cast<Machine&>(machine_).partition();
  if (machine_.ft_params().enabled) {
    return part.collective().op_cycles_live(bytes,
                                            machine_.live_comm_nodes());
  }
  return part.collective().op_cycles(bytes);
}

cycles_t RankCtx::barrier_latency() const {
  auto& part = const_cast<Machine&>(machine_).partition();
  if (machine_.ft_params().enabled) {
    return part.barrier_net().barrier_cycles_live(machine_.live_comm_nodes());
  }
  return part.barrier_net().barrier_cycles();
}

void RankCtx::barrier() {
  ObsScope span(*this, "coll.barrier", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kBarrier));
  auto& part = machine_.partition();
  const cycles_t latency = barrier_latency();
  const cycles_t t0 = core().now();
  sys_event(isa::SysEvent::kMpiCollectives);
  machine_.enter_collective(
      rank_, kCollBarrier, 0, 0, {}, {},
      [&part, t0](Machine::Collective& coll) {
        cycles_t total_wait = 0;
        total_wait += coll.max_arrival - t0;  // rough skew estimate
        part.barrier_net().record_barrier(total_wait);
      },
      latency);
  const cycles_t waited = core().now() - t0;
  if (waited > latency) {
    sys_event(isa::SysEvent::kMpiWaitCycles, waited - latency);
  }
}

void RankCtx::bcast(std::span<std::byte> data, unsigned root) {
  ObsScope span(*this, "coll.bcast", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kBcast));
  auto& part = machine_.partition();
  const cycles_t latency = coll_op_cycles(data.size());
  sys_event(isa::SysEvent::kMpiCollectives);
  machine_.enter_collective(
      rank_, kCollBcast, data.size(), root, std::as_bytes(std::span(data)),
      data,
      [&part, root, latency](Machine::Collective& coll) {
        const auto& src = coll.members[root];
        // A dead root has no buffer to broadcast; survivors keep their
        // local contents (the network op still happened).
        if (src.present) {
          for (auto& m : coll.members) {
            if (!m.present || m.recv.data() == src.send.data()) continue;
            std::memcpy(m.recv.data(), src.send.data(), coll.bytes);
          }
        }
        part.collective().record_operation(coll.bytes, latency);
      },
      latency);
}

void RankCtx::allreduce_sum(std::span<double> inout) {
  ObsScope span(*this, "coll.allreduce", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kAllreduce));
  auto& part = machine_.partition();
  const u64 bytes = inout.size_bytes();
  const cycles_t latency = coll_op_cycles(bytes);
  sys_event(isa::SysEvent::kMpiCollectives);
  machine_.enter_collective(
      rank_, kCollAllreduceSum, bytes, 0, std::as_bytes(inout),
      std::as_writable_bytes(inout),
      [&part, latency](Machine::Collective& coll) {
        const std::size_t n = coll.bytes / sizeof(double);
        std::vector<double> acc(n, 0.0);
        for (auto& m : coll.members) {
          if (!m.present) continue;
          const auto* v = reinterpret_cast<const double*>(m.send.data());
          for (std::size_t i = 0; i < n; ++i) acc[i] += v[i];
        }
        for (auto& m : coll.members) {
          if (!m.present) continue;
          std::memcpy(m.recv.data(), acc.data(), coll.bytes);
        }
        part.collective().record_operation(coll.bytes, latency);
      },
      latency);
}

double RankCtx::allreduce_sum(double v) {
  double buf = v;
  allreduce_sum(std::span<double>(&buf, 1));
  return buf;
}

u64 RankCtx::allreduce_sum(u64 v) {
  // Reuse the double path exactly only when values are small; use a
  // dedicated reduction for exact 64-bit sums.
  ObsScope span(*this, "coll.allreduce", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kAllreduce));
  auto& part = machine_.partition();
  const cycles_t latency = coll_op_cycles(sizeof(u64));
  sys_event(isa::SysEvent::kMpiCollectives);
  u64 buf = v;
  const std::span<u64> inout(&buf, 1);
  machine_.enter_collective(
      rank_, kCollAllreduceSum, sizeof(u64), 0, std::as_bytes(inout),
      std::as_writable_bytes(inout),
      [&part, latency](Machine::Collective& coll) {
        u64 acc = 0;
        for (auto& m : coll.members) {
          if (!m.present) continue;
          u64 v2;
          std::memcpy(&v2, m.send.data(), sizeof(u64));
          acc += v2;
        }
        for (auto& m : coll.members) {
          if (!m.present) continue;
          std::memcpy(m.recv.data(), &acc, sizeof(u64));
        }
        part.collective().record_operation(coll.bytes, latency);
      },
      latency);
  return buf;
}

double RankCtx::allreduce_max(double v) {
  ObsScope span(*this, "coll.allreduce", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kAllreduce));
  auto& part = machine_.partition();
  const cycles_t latency = coll_op_cycles(sizeof(double));
  sys_event(isa::SysEvent::kMpiCollectives);
  double buf = v;
  const std::span<double> inout(&buf, 1);
  machine_.enter_collective(
      rank_, kCollAllreduceMax, sizeof(double), 0, std::as_bytes(inout),
      std::as_writable_bytes(inout),
      [&part, latency](Machine::Collective& coll) {
        double acc = -std::numeric_limits<double>::infinity();
        for (auto& m : coll.members) {
          if (!m.present) continue;
          double v2;
          std::memcpy(&v2, m.send.data(), sizeof(double));
          acc = std::max(acc, v2);
        }
        for (auto& m : coll.members) {
          if (!m.present) continue;
          std::memcpy(m.recv.data(), &acc, sizeof(double));
        }
        part.collective().record_operation(coll.bytes, latency);
      },
      latency);
  return buf;
}

void RankCtx::alltoall(std::span<const std::byte> send_buf,
                       std::span<std::byte> recv_buf, u64 chunk) {
  const unsigned p = size();
  if (send_buf.size() != chunk * p || recv_buf.size() != chunk * p) {
    throw std::invalid_argument("alltoall buffer size mismatch");
  }
  ObsScope span(*this, "coll.alltoall", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kAlltoall));
  auto& part = machine_.partition();
  // Cost model: every node injects (P-1)*chunk bytes across its six torus
  // links, plus per-hop latency for an average-distance traversal.
  const auto& tp = part.torus().params();
  const double inject_bw = 6.0 * tp.link_bytes_per_cycle;
  const auto serialization = static_cast<cycles_t>(std::llround(
      static_cast<double>(chunk) * (p - 1) / inject_bw));
  const unsigned avg_hops =
      (part.torus().shape().x + part.torus().shape().y +
       part.torus().shape().z) / 4 + 1;
  const cycles_t latency = tp.sw_overhead + serialization +
                           cycles_t{avg_hops} * tp.hop_latency;
  sys_event(isa::SysEvent::kMpiCollectives);
  machine_.enter_collective(
      rank_, kCollAlltoall, chunk, 0, send_buf, recv_buf,
      [chunk, p, &part, latency](Machine::Collective& coll) {
        for (unsigned r = 0; r < p; ++r) {
          auto& dst = coll.members[r];
          if (!dst.present) continue;
          for (unsigned s = 0; s < p; ++s) {
            const auto& src = coll.members[s];
            if (!src.present) continue;
            std::memcpy(dst.recv.data() + s * chunk,
                        src.send.data() + r * chunk, chunk);
          }
        }
        part.collective().record_operation(chunk * p, latency);
      },
      latency);
}

void RankCtx::allgather(std::span<const std::byte> mine,
                        std::span<std::byte> all) {
  const unsigned p = size();
  const u64 chunk = mine.size();
  if (all.size() != chunk * p) {
    throw std::invalid_argument("allgather buffer size mismatch");
  }
  ObsScope span(*this, "coll.allgather", obs::SpanCat::kCollective,
                obs::collective_histogram(obs::CollOp::kAllgather));
  auto& part = machine_.partition();
  const cycles_t latency = coll_op_cycles(chunk * p);
  sys_event(isa::SysEvent::kMpiCollectives);
  machine_.enter_collective(
      rank_, kCollAllgather, chunk, 0, mine, all,
      [chunk, p, &part, latency](Machine::Collective& coll) {
        for (unsigned r = 0; r < p; ++r) {
          auto& dst = coll.members[r];
          if (!dst.present) continue;
          for (unsigned s = 0; s < p; ++s) {
            const auto& src = coll.members[s];
            if (!src.present) continue;
            std::memcpy(dst.recv.data() + s * chunk, src.send.data(), chunk);
          }
        }
        part.collective().record_operation(chunk * p, latency);
      },
      latency);
}

}  // namespace bgp::rt
