// RAII span around a simulator activity, recorded against the calling
// rank's (node, core) recorder. With no flight recorder installed the
// constructor is a single load-and-branch and the destructor does
// nothing — the disabled path never touches a simulated clock.
//
// The destructor closes the span at the core's current simulated time
// and only then bills ObsConfig::per_span_overhead to the core, so span
// durations measure the instrumented activity alone. Billing is skipped
// while unwinding an exception (FT faults must not advance a dying
// rank's clock), which also keeps traces well-nested when a collective
// throws ProcFailedError/RevokedError through an open span.
#pragma once

#include <exception>
#include <string_view>

#include "obs/obs.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::rt {

class ObsScope {
 public:
  ObsScope(RankCtx& ctx, std::string_view name, obs::SpanCat cat,
           obs::Histogram* duration_hist = nullptr)
      : fr_(obs::recorder()) {
    if (fr_ == nullptr) return;
    ctx_ = &ctx;
    hist_ = duration_hist;
    fr_->rank(ctx.node_id(), ctx.core_id()).begin(name, cat, ctx.now());
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() {
    if (fr_ == nullptr) return;
    const cycles_t dur =
        fr_->rank(ctx_->node_id(), ctx_->core_id()).end(ctx_->now());
    if (hist_ != nullptr) hist_->observe(static_cast<double>(dur));
    const cycles_t overhead = fr_->config().per_span_overhead;
    if (overhead > 0 && std::uncaught_exceptions() == 0) {
      ctx_->compute_cycles(overhead);
    }
  }

 private:
  obs::FlightRecorder* fr_;
  RankCtx* ctx_ = nullptr;
  obs::Histogram* hist_ = nullptr;
};

}  // namespace bgp::rt
