#include "runtime/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "cpu/core.hpp"
#include "common/strfmt.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "runtime/epoch.hpp"
#include "runtime/rankctx.hpp"

namespace bgp::rt {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      partition_(std::make_unique<sys::Partition>(config.num_nodes,
                                                  config.mode, config.boot)),
      compiler_(config.opt) {
  const unsigned capacity = partition_->num_ranks();
  num_ranks_ = config.num_ranks_override == 0 ? capacity
                                              : config.num_ranks_override;
  if (num_ranks_ > capacity || num_ranks_ == 0) {
    throw std::invalid_argument(
        strfmt("rank override %u out of range (capacity %u)",
               config.num_ranks_override, capacity));
  }
  collective_.members.resize(num_ranks_);
  comm_group_.resize(num_ranks_);
  for (unsigned r = 0; r < num_ranks_; ++r) comm_group_[r] = r;
  in_group_.assign(num_ranks_, true);
  death_detected_.assign(partition_->num_nodes(), false);
  ready_q_.reset(num_ranks_);
}

Machine::~Machine() {
  // If run() threw, rank threads/fibers were already joined there; nothing
  // holds the token at this point.
}

void Machine::check_fault(unsigned rank) {
  if (fault_ == nullptr) return;
  Rank& self = *ranks_[rank];
  const unsigned node = self.ctx->node_id();
  const auto death = fault_->death_cycle(node);
  if (death.has_value() && self.ctx->core().now() >= *death) {
    throw NodeDeathFault{node};
  }
}

void Machine::record_rank_death(unsigned rank, bool inherited) {
  // Commit context (serial: the dying rank holds the token; parallel: runs
  // at the rank's slot), so the list pushes are race-free. Injected deaths
  // and cascade victims are kept apart: only the former mark a node as
  // genuinely killed.
  Rank& self = *ranks_[rank];
  self.status = Status::kDied;
  (inherited ? stranded_ranks_ : dead_ranks_).push_back(rank);
  if (auto* fr = obs::recorder()) {
    RankCtx& ctx = *self.ctx;
    fr->rank(ctx.node_id(), ctx.core_id())
        .instant(inherited ? "fault.rank_stranded" : "fault.node_death",
                 obs::SpanCat::kFault, ctx.core().now());
    (inherited ? fr->wk().ranks_stranded : fr->wk().rank_deaths)->add(1);
  }
}

void Machine::thread_main(unsigned rank, const RankFn& program) {
  Rank& self = *ranks_[rank];
  self.go.acquire();  // wait for the first dispatch
  try {
    if (aborting_.load(std::memory_order_relaxed)) throw AbortRun{};
    program(*self.ctx);
    self.status = Status::kFinished;
  } catch (const AbortRun&) {
    self.status = Status::kFailed;
  } catch (const NodeDeathFault& death) {
    record_rank_death(rank, death.inherited);
  } catch (...) {
    self.status = Status::kFailed;
    self.error = std::current_exception();
  }
  sched_sem_.release();
}

void Machine::run(const RankFn& program) {
  if (ran_) throw std::logic_error("Machine::run may only be called once");
  ran_ = true;

  ranks_.reserve(num_ranks_);
  for (unsigned r = 0; r < num_ranks_; ++r) {
    auto rank = std::make_unique<Rank>();
    rank->ctx = std::make_unique<RankCtx>(*this, r);
    ranks_.push_back(std::move(rank));
  }

  if (config_.sched == SchedMode::kParallel) {
    EpochScheduler epoch(*this, program);
    epoch_ = &epoch;
    try {
      epoch.run();
    } catch (...) {
      epoch_ = nullptr;
      throw;
    }
    epoch_ = nullptr;
  } else {
    if (num_ranks_ > config_.max_rank_threads) {
      throw std::invalid_argument(strfmt(
          "serial scheduler would create %u OS threads (cap %u); use "
          "--sched=parallel (one fiber per rank) or raise max_rank_threads",
          num_ranks_, config_.max_rank_threads));
    }
    run_serial(program);
  }
  run_epilogue();
}

void Machine::run_serial(const RankFn& program) {
  for (unsigned r = 0; r < num_ranks_; ++r) {
    ranks_[r]->thread =
        std::thread([this, r, &program] { thread_main(r, program); });
  }
  for (unsigned r = 0; r < num_ranks_; ++r) {
    ready_q_.push(ranks_[r]->ctx->core().now(), r);
  }
  const auto live = [this](unsigned r) {
    return ranks_[r]->status == Status::kReady;
  };

  // Dispatch loop: hand the token to the most-behind ready rank.
  for (;;) {
    service_stop();
    unsigned next = 0;
    if (!ready_q_.pop_min(next, live)) {
      std::string diag;
      const StallOutcome out = resolve_stall(diag);
      if (out == StallOutcome::kAllDone) break;
      if (out == StallOutcome::kProgress) continue;
      // Abort paths (deadlock or rank failure): every surviving rank only
      // checks aborting_ and unwinds via AbortRun, touching nothing
      // shared — so release them all at once and collect the returns in
      // one sweep instead of a semaphore round-trip per rank.
      unsigned released = 0;
      for (auto& rank : ranks_) {
        if (rank->status == Status::kReady) {
          rank->go.release();
          ++released;
        }
      }
      for (unsigned i = 0; i < released; ++i) sched_sem_.acquire();
      if (out == StallOutcome::kDeadlock) {
        for (auto& rank : ranks_) rank->thread.join();
        throw std::runtime_error(diag);
      }
      continue;  // kAbortFailure: the epilogue rethrows the rank error
    }
    Rank& rank = *ranks_[next];
    rank.go.release();
    sched_sem_.acquire();
    if (rank.status == Status::kReady) {
      // Yielded mid-program: back in the queue at its advanced clock.
      ready_q_.invalidate(next);
      ready_q_.push(rank.ctx->core().now(), next);
    }
  }

  for (auto& rank : ranks_) rank->thread.join();
}

Machine::StallOutcome Machine::resolve_stall(std::string& diag) {
  bool all_done = true;
  bool any_failed = false;
  unsigned nonterminal = 0;
  unsigned coll_blocked = 0;
  for (const auto& rank : ranks_) {
    const Status st = rank->status;
    if (st == Status::kFailed) any_failed = true;
    if (st != Status::kFinished && st != Status::kFailed &&
        st != Status::kDied) {
      all_done = false;
      ++nonterminal;
      if (st == Status::kBlockedCollective) ++coll_blocked;
    }
  }
  if (all_done) return StallOutcome::kAllDone;
  if (!any_failed && !dead_ranks_.empty()) {
    // Node deaths leave survivors stuck in wait structures the dead ranks
    // can no longer satisfy. Resolve, in order:
    // 1. Receivers waiting specifically on a dead rank: without FT they
    //    inherit the death (unwind via NodeDeathFault on resume); with FT
    //    the recv raises ProcFailedError instead so the survivor can
    //    recover.
    bool progressed = false;
    for (unsigned r = 0; r < num_ranks_; ++r) {
      Rank& rank = *ranks_[r];
      if (rank.status != Status::kBlockedRecv) continue;
      if (rank.recv_src == RankCtx::kAnySource) continue;
      if (ranks_[rank.recv_src]->status != Status::kDied) continue;
      (ft_params_.enabled ? rank.proc_failed : rank.peer_dead) = true;
      make_ready(r);
      progressed = true;
    }
    if (progressed) return StallOutcome::kProgress;
    // 2. Every surviving rank reached the collective: the dead ranks will
    //    never arrive, so complete it over the members present (FT flags
    //    the released survivors in finish_collective).
    if (coll_blocked > 0 && coll_blocked == nonterminal) {
      finish_collective();
      return StallOutcome::kProgress;
    }
    // 3. Remaining receivers (any-source, or waiting on a live rank that
    //    is itself stuck) can never be satisfied — no rank is runnable to
    //    send to them. The death cascades (or, with FT, surfaces as an
    //    error return).
    for (unsigned r = 0; r < num_ranks_; ++r) {
      Rank& rank = *ranks_[r];
      if (rank.status == Status::kBlockedRecv) {
        (ft_params_.enabled ? rank.proc_failed : rank.peer_dead) = true;
        make_ready(r);
        progressed = true;
      }
    }
    if (progressed) return StallOutcome::kProgress;
  }
  if (!any_failed) {
    // Nobody is ready, nobody finished everything: deadlock. Build a
    // diagnostic before unwinding.
    diag = "MiniMPI deadlock: no runnable rank;";
    for (unsigned r2 = 0; r2 < num_ranks_; ++r2) {
      const Rank& rk = *ranks_[r2];
      if (rk.status == Status::kBlockedRecv) {
        diag += strfmt(" rank%u=recv(src=%u,tag=%d,mail=%zu)", r2,
                       rk.recv_src, rk.recv_tag, rk.mailbox.size());
      } else if (rk.status == Status::kBlockedCollective) {
        diag += strfmt(" rank%u=coll(kind=%d)", r2, collective_.kind);
      }
    }
  }
  const StallOutcome out =
      any_failed ? StallOutcome::kAbortFailure : StallOutcome::kDeadlock;
  aborting_.store(true, std::memory_order_relaxed);
  for (unsigned r = 0; r < num_ranks_; ++r) {
    const Status st = ranks_[r]->status;
    if (st == Status::kBlockedRecv || st == Status::kBlockedCollective) {
      make_ready(r);  // wake to unwind via AbortRun
    }
  }
  return out;
}

bool Machine::service_stop() {
  if (!stop_requested_.load(std::memory_order_relaxed)) return false;
  if (aborting_.load(std::memory_order_relaxed)) return false;
  aborting_.store(true, std::memory_order_relaxed);
  for (unsigned r = 0; r < num_ranks_; ++r) {
    const Status st = ranks_[r]->status;
    if (st == Status::kBlockedRecv || st == Status::kBlockedCollective) {
      make_ready(r);  // wake to unwind via AbortRun
    }
  }
  return true;
}

void Machine::run_epilogue() {
  for (auto& rank : ranks_) {
    if (rank->error) std::rethrow_exception(rank->error);
  }
  if (aborting_.load(std::memory_order_relaxed)) {
    // A requested stop reuses the abort unwinding machinery but is a
    // deliberate cancellation, not a failure.
    if (stop_requested_.load(std::memory_order_relaxed)) throw RunStopped{};
    throw std::runtime_error("run aborted");
  }
  if (!dead_ranks_.empty()) {
    std::string who;
    for (unsigned n : dead_nodes()) who += strfmt(" node%u", n);
    if (stranded_ranks_.empty()) {
      log_warn("run completed degraded: %zu rank(s) lost to node death on%s"
               "%s",
               dead_ranks_.size(), who.c_str(),
               ft_params_.enabled ? " (survivors recovered)" : "");
    } else {
      log_warn("run completed degraded: %zu rank(s) lost to node death on%s, "
               "%zu more stranded by the cascade",
               dead_ranks_.size(), who.c_str(), stranded_ranks_.size());
    }
  }
}

std::vector<unsigned> Machine::dead_nodes() const {
  std::vector<unsigned> nodes;
  const auto collect = [&](const std::vector<unsigned>& ranks) {
    for (const unsigned r : ranks) {
      const unsigned n = ranks_[r]->ctx->node_id();
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
        nodes.push_back(n);
      }
    }
  };
  collect(dead_ranks_);
  collect(stranded_ranks_);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

void Machine::make_ready(unsigned rank) {
  ranks_[rank]->status = Status::kReady;
  if (epoch_ != nullptr) {
    epoch_->on_ready(rank);
  } else {
    ready_q_.invalidate(rank);
    ready_q_.push(ranks_[rank]->ctx->core().now(), rank);
  }
}

void Machine::consume_wake_flags(unsigned rank) {
  Rank& self = *ranks_[rank];
  if (aborting_.load(std::memory_order_relaxed)) throw AbortRun{};
  if (self.peer_dead) {
    self.peer_dead = false;
    throw NodeDeathFault{self.ctx->node_id(), /*inherited=*/true};
  }
  if (self.revoked_wake) {
    self.revoked_wake = false;
    throw ft::RevokedError(
        strfmt("rank %u: communicator revoked while blocked", rank));
  }
  if (self.proc_failed) {
    self.proc_failed = false;
    raise_proc_failed(rank);
  }
}

void Machine::yield_from(unsigned rank) {
  Rank& self = *ranks_[rank];
  sched_sem_.release();
  self.go.acquire();
  consume_wake_flags(rank);
}

void Machine::yield_rank(unsigned rank) {
  if (epoch_ != nullptr) {
    epoch_->yield_segment(rank);
    consume_wake_flags(rank);
  } else {
    yield_from(rank);
  }
}

void Machine::block_rank(unsigned rank) {
  if (epoch_ != nullptr) {
    epoch_->block_fiber(rank);
    consume_wake_flags(rank);
  } else {
    yield_from(rank);
  }
}

void Machine::run_at_slot(unsigned rank, const std::function<void()>& fn) {
  if (epoch_ != nullptr) {
    epoch_->run_at_slot(rank, fn);
  } else {
    fn();  // the token already serializes everything
  }
}

const opt::CompiledLoop& Machine::compile_cached(const isa::LoopDesc& desc) {
  std::string key;
  key.reserve(desc.name.size() + 1 + 64);
  key.append(desc.name.data(), desc.name.size());
  key.push_back('\0');
  const auto append_pod = [&key](const auto& v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  append_pod(desc.trip);
  append_pod(desc.body.fp);
  append_pod(desc.body.ls);
  append_pod(desc.body.in);
  append_pod(desc.vectorizable);
  append_pod(desc.reduction);
  append_pod(desc.has_calls);
  append_pod(desc.locality);
  std::lock_guard<std::mutex> lock(loop_cache_mu_);
  auto it = loop_cache_.find(key);
  if (it == loop_cache_.end()) {
    auto entry = std::make_unique<CachedLoop>();
    entry->name.assign(desc.name);
    entry->cl = compiler_.compile(desc);
    entry->cl.name = entry->name;  // re-point the view at owned storage
    // Derive the delivery-ready per-core batches the compiler cannot build
    // (the cycle entry needs the CPU timing model): core-0 ids rebased onto
    // each core's slice, CYCLE_COUNT last. All cores run identical default
    // parameters (sys::Node constructs them that way), so one
    // bundle_cycles() covers every core and Core::execute_block can charge
    // the same value it finds precomputed in its batch.
    const cycles_t block_cycles =
        cpu::Core::bundle_cycles(entry->cl.ops, cpu::CoreParams{});
    for (unsigned c = 0; c < isa::kCoresPerNode; ++c) {
      std::vector<isa::EventCount>& v = entry->cl.core_events[c];
      v.reserve(entry->cl.events.size() + 1);
      const u16 base = static_cast<u16>(c * isa::ev::kPerCoreSlice);
      for (const isa::EventCount& e : entry->cl.events) {
        v.push_back({static_cast<isa::EventId>(e.id + base), e.count});
      }
      if (block_cycles > 0) {
        v.push_back({isa::ev::cycle_count(c), block_cycles});
      }
    }
    it = loop_cache_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second->cl;
}

void Machine::check_revoked(unsigned rank) const {
  if (ft_params_.enabled && revoked_) {
    throw ft::RevokedError(strfmt("rank %u: communicator revoked", rank));
  }
}

void Machine::detect_failed_peer(unsigned rank, unsigned peer) {
  if (!ft_params_.enabled) return;  // legacy path: the scheduler cascades
  Rank& self = *ranks_[rank];
  self.ctx->core().advance(ft_params_.detect_latency);
  note_detection(rank, ranks_[peer]->ctx->node_id());
  throw ft::ProcFailedError(
      strfmt("rank %u: peer rank %u failed", rank, peer));
}

void Machine::raise_proc_failed(unsigned rank) {
  Rank& self = *ranks_[rank];
  self.ctx->core().advance(ft_params_.detect_latency);
  for (const unsigned r : comm_group_) {
    if (ranks_[r]->status == Status::kDied) {
      note_detection(rank, ranks_[r]->ctx->node_id());
    }
  }
  throw ft::ProcFailedError(
      strfmt("rank %u: peer failure detected in pending operation", rank));
}

void Machine::note_detection(unsigned rank, unsigned node) {
  if (death_detected_[node]) return;
  death_detected_[node] = true;
  cycles_t death = 0;
  if (fault_ != nullptr) {
    // death_cycle() is the injected schedule, i.e. ground truth for when
    // the node stopped; the gap to `cycle` is the observed detection lag.
    death = fault_->death_cycle(node).value_or(0);
  }
  recovery_log_.push_back(ft::RecoveryEvent{
      .kind = ft::RecoveryKind::kDeathDetected,
      .node = node,
      .rank = rank,
      .cycle = ranks_[rank]->ctx->core().now(),
      .cost = ft_params_.detect_latency,
      .aux = death,
  });
  if (auto* fr = obs::recorder()) {
    RankCtx& ctx = *ranks_[rank]->ctx;
    fr->rank(ctx.node_id(), ctx.core_id())
        .instant("ft.death_detected", obs::SpanCat::kFt, ctx.core().now());
    fr->wk().deaths_detected->add(1);
  }
}

void Machine::revoke_comm(unsigned rank, cycles_t cost) {
  // The wake-ups mutate scheduler state, so the body runs as a commit
  // (inline in serial mode; FT implies strict mode, so the parallel slot
  // is immediate as well).
  run_at_slot(rank, [this, rank, cost] {
    if (revoked_) return;  // an already-revoked communicator stays revoked
    revoked_ = true;
    recovery_log_.push_back(ft::RecoveryEvent{
        .kind = ft::RecoveryKind::kRevoke,
        .node = ranks_[rank]->ctx->node_id(),
        .rank = rank,
        .cycle = ranks_[rank]->ctx->core().now(),
        .cost = cost,
        .aux = 0,
    });
    partition_->barrier_net().record_barrier(0);
    // The revoke notification rides the barrier/interrupt network: every
    // plain-blocked survivor is interrupted and resumes into RevokedError.
    // Ranks inside internal FT operations are exempt (recovery must be
    // able to run to completion on a revoked communicator).
    bool reset_collective = false;
    for (unsigned r = 0; r < num_ranks_; ++r) {
      Rank& rk = *ranks_[r];
      if (rk.status == Status::kBlockedRecv) {
        rk.revoked_wake = true;
        make_ready(r);
      } else if (rk.status == Status::kBlockedCollective &&
                 !collective_.internal) {
        rk.revoked_wake = true;
        make_ready(r);
        reset_collective = true;
      }
    }
    if (reset_collective) {
      collective_.arrived = 0;
      collective_.kind = -1;
      collective_.internal = false;
      collective_.combine = nullptr;
    }
  });
}

void Machine::apply_shrink(std::vector<unsigned> group, cycles_t when,
                           cycles_t cost) {
  comm_group_ = std::move(group);
  in_group_.assign(num_ranks_, false);
  for (const unsigned r : comm_group_) in_group_[r] = true;
  ++comm_epoch_;
  revoked_ = false;
  recovery_log_.push_back(ft::RecoveryEvent{
      .kind = ft::RecoveryKind::kShrink,
      .node = ft::RecoveryEvent::kNoNode,
      .rank = ft::RecoveryEvent::kNoRank,
      .cycle = when,
      .cost = cost,
      .aux = comm_group_.size(),
  });
}

unsigned Machine::live_comm_nodes() const {
  std::vector<bool> seen(partition_->num_nodes(), false);
  unsigned live = 0;
  for (const unsigned r : comm_group_) {
    const Rank& rk = *ranks_[r];
    if (rk.status == Status::kDied || rk.status == Status::kFailed) continue;
    const unsigned node = rk.ctx->node_id();
    if (!seen[node]) {
      seen[node] = true;
      ++live;
    }
  }
  return live;
}

void Machine::deposit(Message msg, unsigned dst) {
  Rank& receiver = *ranks_.at(dst);
  const unsigned src = msg.src;
  const int tag = msg.tag;
  receiver.mailbox.push_back(std::move(msg));
  if (receiver.status == Status::kBlockedRecv &&
      (receiver.recv_src == RankCtx::kAnySource || receiver.recv_src == src) &&
      (receiver.recv_tag == RankCtx::kAnyTag || receiver.recv_tag == tag)) {
    make_ready(dst);
  }
}

std::optional<Machine::Message> Machine::try_match(unsigned rank, unsigned src,
                                                   int tag) {
  Rank& self = *ranks_[rank];
  for (auto it = self.mailbox.begin(); it != self.mailbox.end(); ++it) {
    if ((src == RankCtx::kAnySource || it->src == src) &&
        (tag == RankCtx::kAnyTag || it->tag == tag)) {
      Message m = std::move(*it);
      self.mailbox.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void Machine::enter_collective(
    unsigned rank, int kind, u64 bytes, unsigned root,
    std::span<const std::byte> send, std::span<std::byte> recv,
    const std::function<void(Collective&)>& combine, cycles_t op_latency) {
  check_fault(rank);  // a dead rank must never register as an arrival
  const bool internal = kind <= kCollFtFirst;
  if (!internal) check_revoked(rank);
  Rank& self = *ranks_[rank];
  if (ft_params_.enabled && !in_group_[rank]) {
    throw std::logic_error(strfmt(
        "rank %u entered a collective but is not in the shrunk communicator",
        rank));
  }

  bool blocked = false;
  run_at_slot(rank, [&] {
    Collective& coll = collective_;
    if (coll.arrived == 0) {
      coll.kind = kind;
      coll.bytes = bytes;
      coll.root = root;
      coll.max_arrival = 0;
      coll.combine = combine;
      coll.op_latency = op_latency;
      coll.internal = internal;
      for (auto& m : coll.members) m = Collective::Member{};
      if (ft_params_.enabled) {
        // Only members still alive at first arrival can complete the
        // rendezvous inline; anyone who dies later simply never arrives
        // and the scheduler's stall resolution completes over those
        // present.
        coll.expected = 0;
        for (const unsigned r : comm_group_) {
          const Status st = ranks_[r]->status;
          if (st != Status::kDied && st != Status::kFailed) ++coll.expected;
        }
      } else {
        coll.expected = num_ranks_;
      }
    } else if (coll.kind != kind || coll.root != root) {
      throw std::logic_error(
          strfmt("collective mismatch: rank %u entered kind %d but kind %d "
                 "in flight",
                 rank, kind, coll.kind));
    }

    auto& member = coll.members[rank];
    member.send = send;
    member.recv = recv;
    member.present = true;
    coll.max_arrival = std::max(coll.max_arrival, self.ctx->core().now());
    ++coll.arrived;

    if (coll.arrived < coll.expected) {
      self.status = Status::kBlockedCollective;
      blocked = true;
    } else {
      // Last arrival: perform the data movement and release everyone.
      finish_collective();
    }
  });
  if (blocked) {
    block_rank(rank);
    return;  // a later arrival completed the operation and synced our clock
  }
  if (self.proc_failed) {
    self.proc_failed = false;
    raise_proc_failed(rank);
  }
}

void Machine::finish_collective() {
  Collective& coll = collective_;
  if (coll.combine) coll.combine(coll);
  const cycles_t done = coll.max_arrival + coll.op_latency;
  // FT: a plain collective that completed without a (dead) group member is
  // an error at every survivor it released — ULFM collectives raise
  // MPI_ERR_PROC_FAILED rather than silently dropping a contribution.
  // Internal FT operations are designed to complete over survivors.
  bool failure = false;
  if (ft_params_.enabled && !coll.internal) {
    for (const unsigned r : comm_group_) {
      if (ranks_[r]->status == Status::kDied && !coll.members[r].present) {
        failure = true;
        break;
      }
    }
  }
  for (unsigned r = 0; r < num_ranks_; ++r) {
    Rank& rk = *ranks_[r];
    if (rk.status == Status::kDied || rk.status == Status::kFailed) {
      continue;  // do not advance clocks of dead ranks' cores
    }
    rk.ctx->core().sync_to(done);
    if (failure && coll.members[r].present) rk.proc_failed = true;
    if (rk.status == Status::kBlockedCollective) {
      make_ready(r);
    }
  }
  coll.arrived = 0;
  coll.kind = -1;
  coll.internal = false;
  coll.combine = nullptr;  // release references captured by the lambda
}

cycles_t Machine::node_time(unsigned node) const {
  return partition_->node(node).timebase();
}

cycles_t Machine::elapsed() const {
  cycles_t t = 0;
  for (unsigned n = 0; n < partition_->num_nodes(); ++n) {
    t = std::max(t, node_time(n));
  }
  return t;
}

}  // namespace bgp::rt
