#include "runtime/pool.hpp"

#include <cstdint>
#include <stdexcept>

#ifdef BGP_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef BGP_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace bgp::rt {

namespace {
/// Minimum usable fiber stack: SIGSTKSZ-ish plus room for the simulator's
/// deepest call chains (kernel bodies, dump serialization, printf).
constexpr std::size_t kMinStackBytes = 64 * 1024;
}  // namespace

Fiber::Fiber(std::size_t stack_bytes, std::function<void()> entry)
    : entry_(std::move(entry)),
      stack_bytes_(stack_bytes < kMinStackBytes ? kMinStackBytes
                                                : stack_bytes) {
  stack_ = std::make_unique<std::byte[]>(stack_bytes_);
  if (getcontext(&ctx_) != 0) {
    throw std::runtime_error("fiber: getcontext failed");
  }
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = nullptr;  // termination switches back manually
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
#ifdef BGP_TSAN_FIBERS
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef BGP_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                    static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Fiber*>(self)->run_entry();
}

void Fiber::run_entry() {
#ifdef BGP_ASAN_FIBERS
  // First entry: complete the host->fiber switch and learn the resuming
  // thread's stack bounds so park() can annotate the way back.
  __sanitizer_finish_switch_fiber(nullptr, &host_stack_bottom_,
                                  &host_stack_size_);
#endif
  entry_();
  finished_ = true;
  // Final switch out: the fiber never resumes, so its fake stack (if any)
  // is released rather than saved.
#ifdef BGP_ASAN_FIBERS
  __sanitizer_start_switch_fiber(nullptr, host_stack_bottom_,
                                 host_stack_size_);
#endif
#ifdef BGP_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_host_, 0);
#endif
  swapcontext(&ctx_, &ret_ctx_);
}

void Fiber::resume() {
  started_ = true;
#ifdef BGP_TSAN_FIBERS
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef BGP_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&host_fake_stack_, stack_.get(),
                                 stack_bytes_);
#endif
  swapcontext(&ret_ctx_, &ctx_);
#ifdef BGP_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(host_fake_stack_, nullptr, nullptr);
#endif
}

void Fiber::park() {
#ifdef BGP_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&fiber_fake_stack_, host_stack_bottom_,
                                 host_stack_size_);
#endif
#ifdef BGP_TSAN_FIBERS
  __tsan_switch_to_fiber(tsan_host_, 0);
#endif
  swapcontext(&ctx_, &ret_ctx_);
#ifdef BGP_ASAN_FIBERS
  // Resumed again, possibly from a different worker: refresh the host
  // stack bounds for the next park.
  __sanitizer_finish_switch_fiber(fiber_fake_stack_, &host_stack_bottom_,
                                  &host_stack_size_);
#endif
}

WorkerPool::WorkerPool(unsigned num_workers) {
  workers_.reserve(num_workers == 0 ? 1 : num_workers);
  for (unsigned i = 0; i < (num_workers == 0 ? 1 : num_workers); ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace bgp::rt
