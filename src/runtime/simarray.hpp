// SimArray<T>: a real C++ array paired with an address in the simulated
// node address space. Kernels compute on the real data (so results are
// verifiable) while the simulated addresses drive the cache models.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace bgp::rt {

template <typename T>
class SimArray {
 public:
  SimArray() = default;
  SimArray(addr_t base, std::size_t n) : base_(base), data_(n) {}

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  /// Simulated address of element `i`.
  [[nodiscard]] addr_t addr(std::size_t i = 0) const noexcept {
    return base_ + i * sizeof(T);
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] u64 bytes() const noexcept { return data_.size() * sizeof(T); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<T> span() noexcept { return {data_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_}; }

  [[nodiscard]] auto begin() noexcept { return data_.begin(); }
  [[nodiscard]] auto end() noexcept { return data_.end(); }
  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

  void fill(const T& v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  addr_t base_ = 0;
  std::vector<T> data_;
};

}  // namespace bgp::rt
