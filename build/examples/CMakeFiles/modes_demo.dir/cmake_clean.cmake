file(REMOVE_RECURSE
  "CMakeFiles/modes_demo.dir/modes_demo.cpp.o"
  "CMakeFiles/modes_demo.dir/modes_demo.cpp.o.d"
  "modes_demo"
  "modes_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modes_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
