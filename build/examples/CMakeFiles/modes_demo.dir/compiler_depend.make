# Empty compiler generated dependencies file for modes_demo.
# This may be replaced when dependencies are built.
