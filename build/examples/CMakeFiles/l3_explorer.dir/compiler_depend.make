# Empty compiler generated dependencies file for l3_explorer.
# This may be replaced when dependencies are built.
