file(REMOVE_RECURSE
  "CMakeFiles/l3_explorer.dir/l3_explorer.cpp.o"
  "CMakeFiles/l3_explorer.dir/l3_explorer.cpp.o.d"
  "l3_explorer"
  "l3_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
