# Empty compiler generated dependencies file for threshold_monitor.
# This may be replaced when dependencies are built.
