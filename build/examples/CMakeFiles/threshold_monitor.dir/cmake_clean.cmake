file(REMOVE_RECURSE
  "CMakeFiles/threshold_monitor.dir/threshold_monitor.cpp.o"
  "CMakeFiles/threshold_monitor.dir/threshold_monitor.cpp.o.d"
  "threshold_monitor"
  "threshold_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
