# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_upc[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sys[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_postproc[1]_include.cmake")
include("/root/repo/build/tests/test_nas[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
