file(REMOVE_RECURSE
  "CMakeFiles/test_nas.dir/nas/kernels_test.cpp.o"
  "CMakeFiles/test_nas.dir/nas/kernels_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/nas/numerics_test.cpp.o"
  "CMakeFiles/test_nas.dir/nas/numerics_test.cpp.o.d"
  "CMakeFiles/test_nas.dir/nas/solvers_test.cpp.o"
  "CMakeFiles/test_nas.dir/nas/solvers_test.cpp.o.d"
  "test_nas"
  "test_nas.pdb"
  "test_nas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
