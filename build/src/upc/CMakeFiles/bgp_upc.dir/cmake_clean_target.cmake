file(REMOVE_RECURSE
  "libbgp_upc.a"
)
