file(REMOVE_RECURSE
  "CMakeFiles/bgp_upc.dir/upc_unit.cpp.o"
  "CMakeFiles/bgp_upc.dir/upc_unit.cpp.o.d"
  "libbgp_upc.a"
  "libbgp_upc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_upc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
