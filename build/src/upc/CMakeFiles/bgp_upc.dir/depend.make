# Empty dependencies file for bgp_upc.
# This may be replaced when dependencies are built.
