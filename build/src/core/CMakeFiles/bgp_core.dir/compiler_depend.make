# Empty compiler generated dependencies file for bgp_core.
# This may be replaced when dependencies are built.
