file(REMOVE_RECURSE
  "CMakeFiles/bgp_core.dir/capi.cpp.o"
  "CMakeFiles/bgp_core.dir/capi.cpp.o.d"
  "CMakeFiles/bgp_core.dir/node_monitor.cpp.o"
  "CMakeFiles/bgp_core.dir/node_monitor.cpp.o.d"
  "CMakeFiles/bgp_core.dir/sampler.cpp.o"
  "CMakeFiles/bgp_core.dir/sampler.cpp.o.d"
  "CMakeFiles/bgp_core.dir/session.cpp.o"
  "CMakeFiles/bgp_core.dir/session.cpp.o.d"
  "libbgp_core.a"
  "libbgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
