file(REMOVE_RECURSE
  "libbgp_core.a"
)
