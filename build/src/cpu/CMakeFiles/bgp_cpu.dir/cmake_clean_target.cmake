file(REMOVE_RECURSE
  "libbgp_cpu.a"
)
