# Empty compiler generated dependencies file for bgp_cpu.
# This may be replaced when dependencies are built.
