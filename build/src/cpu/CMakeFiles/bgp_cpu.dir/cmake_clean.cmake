file(REMOVE_RECURSE
  "CMakeFiles/bgp_cpu.dir/core.cpp.o"
  "CMakeFiles/bgp_cpu.dir/core.cpp.o.d"
  "libbgp_cpu.a"
  "libbgp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
