file(REMOVE_RECURSE
  "libbgp_nas.a"
)
