# Empty dependencies file for bgp_nas.
# This may be replaced when dependencies are built.
