file(REMOVE_RECURSE
  "CMakeFiles/bgp_nas.dir/bt.cpp.o"
  "CMakeFiles/bgp_nas.dir/bt.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/cg.cpp.o"
  "CMakeFiles/bgp_nas.dir/cg.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/ep.cpp.o"
  "CMakeFiles/bgp_nas.dir/ep.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/ft.cpp.o"
  "CMakeFiles/bgp_nas.dir/ft.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/is.cpp.o"
  "CMakeFiles/bgp_nas.dir/is.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/kernel.cpp.o"
  "CMakeFiles/bgp_nas.dir/kernel.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/lu.cpp.o"
  "CMakeFiles/bgp_nas.dir/lu.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/mg.cpp.o"
  "CMakeFiles/bgp_nas.dir/mg.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/runner.cpp.o"
  "CMakeFiles/bgp_nas.dir/runner.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/solvers.cpp.o"
  "CMakeFiles/bgp_nas.dir/solvers.cpp.o.d"
  "CMakeFiles/bgp_nas.dir/sp.cpp.o"
  "CMakeFiles/bgp_nas.dir/sp.cpp.o.d"
  "libbgp_nas.a"
  "libbgp_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
