
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nas/bt.cpp" "src/nas/CMakeFiles/bgp_nas.dir/bt.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/bt.cpp.o.d"
  "/root/repo/src/nas/cg.cpp" "src/nas/CMakeFiles/bgp_nas.dir/cg.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/cg.cpp.o.d"
  "/root/repo/src/nas/ep.cpp" "src/nas/CMakeFiles/bgp_nas.dir/ep.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/ep.cpp.o.d"
  "/root/repo/src/nas/ft.cpp" "src/nas/CMakeFiles/bgp_nas.dir/ft.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/ft.cpp.o.d"
  "/root/repo/src/nas/is.cpp" "src/nas/CMakeFiles/bgp_nas.dir/is.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/is.cpp.o.d"
  "/root/repo/src/nas/kernel.cpp" "src/nas/CMakeFiles/bgp_nas.dir/kernel.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/kernel.cpp.o.d"
  "/root/repo/src/nas/lu.cpp" "src/nas/CMakeFiles/bgp_nas.dir/lu.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/lu.cpp.o.d"
  "/root/repo/src/nas/mg.cpp" "src/nas/CMakeFiles/bgp_nas.dir/mg.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/mg.cpp.o.d"
  "/root/repo/src/nas/runner.cpp" "src/nas/CMakeFiles/bgp_nas.dir/runner.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/runner.cpp.o.d"
  "/root/repo/src/nas/solvers.cpp" "src/nas/CMakeFiles/bgp_nas.dir/solvers.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/solvers.cpp.o.d"
  "/root/repo/src/nas/sp.cpp" "src/nas/CMakeFiles/bgp_nas.dir/sp.cpp.o" "gcc" "src/nas/CMakeFiles/bgp_nas.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/bgp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/postproc/CMakeFiles/bgp_postproc.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/bgp_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/bgp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bgp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/upc/CMakeFiles/bgp_upc.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/bgp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bgp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
