file(REMOVE_RECURSE
  "CMakeFiles/bgp_runtime.dir/machine.cpp.o"
  "CMakeFiles/bgp_runtime.dir/machine.cpp.o.d"
  "CMakeFiles/bgp_runtime.dir/rankctx.cpp.o"
  "CMakeFiles/bgp_runtime.dir/rankctx.cpp.o.d"
  "libbgp_runtime.a"
  "libbgp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
