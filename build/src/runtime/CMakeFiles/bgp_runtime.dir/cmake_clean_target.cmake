file(REMOVE_RECURSE
  "libbgp_runtime.a"
)
