# Empty compiler generated dependencies file for bgp_runtime.
# This may be replaced when dependencies are built.
