file(REMOVE_RECURSE
  "libbgp_mem.a"
)
