# Empty compiler generated dependencies file for bgp_mem.
# This may be replaced when dependencies are built.
