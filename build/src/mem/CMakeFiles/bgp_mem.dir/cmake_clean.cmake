file(REMOVE_RECURSE
  "CMakeFiles/bgp_mem.dir/cache.cpp.o"
  "CMakeFiles/bgp_mem.dir/cache.cpp.o.d"
  "CMakeFiles/bgp_mem.dir/ddr.cpp.o"
  "CMakeFiles/bgp_mem.dir/ddr.cpp.o.d"
  "CMakeFiles/bgp_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/bgp_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/bgp_mem.dir/prefetch.cpp.o"
  "CMakeFiles/bgp_mem.dir/prefetch.cpp.o.d"
  "CMakeFiles/bgp_mem.dir/snoop.cpp.o"
  "CMakeFiles/bgp_mem.dir/snoop.cpp.o.d"
  "libbgp_mem.a"
  "libbgp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
