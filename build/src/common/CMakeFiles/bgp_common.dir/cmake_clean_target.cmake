file(REMOVE_RECURSE
  "libbgp_common.a"
)
