file(REMOVE_RECURSE
  "CMakeFiles/bgp_common.dir/binio.cpp.o"
  "CMakeFiles/bgp_common.dir/binio.cpp.o.d"
  "CMakeFiles/bgp_common.dir/csv.cpp.o"
  "CMakeFiles/bgp_common.dir/csv.cpp.o.d"
  "CMakeFiles/bgp_common.dir/log.cpp.o"
  "CMakeFiles/bgp_common.dir/log.cpp.o.d"
  "CMakeFiles/bgp_common.dir/rng.cpp.o"
  "CMakeFiles/bgp_common.dir/rng.cpp.o.d"
  "CMakeFiles/bgp_common.dir/strfmt.cpp.o"
  "CMakeFiles/bgp_common.dir/strfmt.cpp.o.d"
  "libbgp_common.a"
  "libbgp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
