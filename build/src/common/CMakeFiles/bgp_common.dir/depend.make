# Empty dependencies file for bgp_common.
# This may be replaced when dependencies are built.
