# Empty compiler generated dependencies file for bgp_sys.
# This may be replaced when dependencies are built.
