file(REMOVE_RECURSE
  "CMakeFiles/bgp_sys.dir/mode.cpp.o"
  "CMakeFiles/bgp_sys.dir/mode.cpp.o.d"
  "CMakeFiles/bgp_sys.dir/node.cpp.o"
  "CMakeFiles/bgp_sys.dir/node.cpp.o.d"
  "CMakeFiles/bgp_sys.dir/partition.cpp.o"
  "CMakeFiles/bgp_sys.dir/partition.cpp.o.d"
  "libbgp_sys.a"
  "libbgp_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
