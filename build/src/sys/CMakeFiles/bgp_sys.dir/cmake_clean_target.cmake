file(REMOVE_RECURSE
  "libbgp_sys.a"
)
