# Empty compiler generated dependencies file for bgp_compiler.
# This may be replaced when dependencies are built.
