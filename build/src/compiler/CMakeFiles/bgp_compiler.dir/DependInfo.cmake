
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compiler.cpp" "src/compiler/CMakeFiles/bgp_compiler.dir/compiler.cpp.o" "gcc" "src/compiler/CMakeFiles/bgp_compiler.dir/compiler.cpp.o.d"
  "/root/repo/src/compiler/optconfig.cpp" "src/compiler/CMakeFiles/bgp_compiler.dir/optconfig.cpp.o" "gcc" "src/compiler/CMakeFiles/bgp_compiler.dir/optconfig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/bgp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
