file(REMOVE_RECURSE
  "CMakeFiles/bgp_compiler.dir/compiler.cpp.o"
  "CMakeFiles/bgp_compiler.dir/compiler.cpp.o.d"
  "CMakeFiles/bgp_compiler.dir/optconfig.cpp.o"
  "CMakeFiles/bgp_compiler.dir/optconfig.cpp.o.d"
  "libbgp_compiler.a"
  "libbgp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
