file(REMOVE_RECURSE
  "libbgp_compiler.a"
)
