file(REMOVE_RECURSE
  "libbgp_isa.a"
)
