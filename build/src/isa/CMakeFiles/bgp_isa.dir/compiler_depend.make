# Empty compiler generated dependencies file for bgp_isa.
# This may be replaced when dependencies are built.
