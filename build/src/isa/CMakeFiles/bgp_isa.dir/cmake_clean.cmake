file(REMOVE_RECURSE
  "CMakeFiles/bgp_isa.dir/events.cpp.o"
  "CMakeFiles/bgp_isa.dir/events.cpp.o.d"
  "CMakeFiles/bgp_isa.dir/ops.cpp.o"
  "CMakeFiles/bgp_isa.dir/ops.cpp.o.d"
  "libbgp_isa.a"
  "libbgp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
