file(REMOVE_RECURSE
  "CMakeFiles/bgp_net.dir/collective.cpp.o"
  "CMakeFiles/bgp_net.dir/collective.cpp.o.d"
  "CMakeFiles/bgp_net.dir/torus.cpp.o"
  "CMakeFiles/bgp_net.dir/torus.cpp.o.d"
  "libbgp_net.a"
  "libbgp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
