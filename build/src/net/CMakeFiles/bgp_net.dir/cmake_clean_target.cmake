file(REMOVE_RECURSE
  "libbgp_net.a"
)
