# Empty compiler generated dependencies file for bgp_net.
# This may be replaced when dependencies are built.
