file(REMOVE_RECURSE
  "CMakeFiles/bgp_postproc.dir/aggregate.cpp.o"
  "CMakeFiles/bgp_postproc.dir/aggregate.cpp.o.d"
  "CMakeFiles/bgp_postproc.dir/loader.cpp.o"
  "CMakeFiles/bgp_postproc.dir/loader.cpp.o.d"
  "CMakeFiles/bgp_postproc.dir/metrics.cpp.o"
  "CMakeFiles/bgp_postproc.dir/metrics.cpp.o.d"
  "CMakeFiles/bgp_postproc.dir/report.cpp.o"
  "CMakeFiles/bgp_postproc.dir/report.cpp.o.d"
  "CMakeFiles/bgp_postproc.dir/sanity.cpp.o"
  "CMakeFiles/bgp_postproc.dir/sanity.cpp.o.d"
  "libbgp_postproc.a"
  "libbgp_postproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
