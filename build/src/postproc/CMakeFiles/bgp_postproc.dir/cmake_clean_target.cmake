file(REMOVE_RECURSE
  "libbgp_postproc.a"
)
