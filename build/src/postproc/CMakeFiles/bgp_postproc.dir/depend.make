# Empty dependencies file for bgp_postproc.
# This may be replaced when dependencies are built.
