file(REMOVE_RECURSE
  "CMakeFiles/fig06_instr_profile.dir/fig06_instr_profile.cpp.o"
  "CMakeFiles/fig06_instr_profile.dir/fig06_instr_profile.cpp.o.d"
  "fig06_instr_profile"
  "fig06_instr_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_instr_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
