# Empty compiler generated dependencies file for fig06_instr_profile.
# This may be replaced when dependencies are built.
