file(REMOVE_RECURSE
  "CMakeFiles/fig07_ft_simd.dir/fig07_ft_simd.cpp.o"
  "CMakeFiles/fig07_ft_simd.dir/fig07_ft_simd.cpp.o.d"
  "fig07_ft_simd"
  "fig07_ft_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ft_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
