# Empty compiler generated dependencies file for fig07_ft_simd.
# This may be replaced when dependencies are built.
