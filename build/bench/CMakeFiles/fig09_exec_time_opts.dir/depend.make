# Empty dependencies file for fig09_exec_time_opts.
# This may be replaced when dependencies are built.
