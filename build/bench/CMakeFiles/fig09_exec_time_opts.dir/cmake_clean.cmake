file(REMOVE_RECURSE
  "CMakeFiles/fig09_exec_time_opts.dir/fig09_exec_time_opts.cpp.o"
  "CMakeFiles/fig09_exec_time_opts.dir/fig09_exec_time_opts.cpp.o.d"
  "fig09_exec_time_opts"
  "fig09_exec_time_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_exec_time_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
