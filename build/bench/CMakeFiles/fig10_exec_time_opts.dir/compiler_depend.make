# Empty compiler generated dependencies file for fig10_exec_time_opts.
# This may be replaced when dependencies are built.
