file(REMOVE_RECURSE
  "CMakeFiles/fig10_exec_time_opts.dir/fig10_exec_time_opts.cpp.o"
  "CMakeFiles/fig10_exec_time_opts.dir/fig10_exec_time_opts.cpp.o.d"
  "fig10_exec_time_opts"
  "fig10_exec_time_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_exec_time_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
