file(REMOVE_RECURSE
  "CMakeFiles/fig14_mflops_per_chip.dir/fig14_mflops_per_chip.cpp.o"
  "CMakeFiles/fig14_mflops_per_chip.dir/fig14_mflops_per_chip.cpp.o.d"
  "fig14_mflops_per_chip"
  "fig14_mflops_per_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_mflops_per_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
