# Empty compiler generated dependencies file for fig14_mflops_per_chip.
# This may be replaced when dependencies are built.
