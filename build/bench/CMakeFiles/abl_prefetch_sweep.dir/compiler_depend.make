# Empty compiler generated dependencies file for abl_prefetch_sweep.
# This may be replaced when dependencies are built.
