file(REMOVE_RECURSE
  "CMakeFiles/abl_prefetch_sweep.dir/abl_prefetch_sweep.cpp.o"
  "CMakeFiles/abl_prefetch_sweep.dir/abl_prefetch_sweep.cpp.o.d"
  "abl_prefetch_sweep"
  "abl_prefetch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prefetch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
