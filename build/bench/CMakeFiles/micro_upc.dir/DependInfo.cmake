
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_upc.cpp" "bench/CMakeFiles/micro_upc.dir/micro_upc.cpp.o" "gcc" "bench/CMakeFiles/micro_upc.dir/micro_upc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bgp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/bgp_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/bgp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bgp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/bgp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/upc/CMakeFiles/bgp_upc.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/bgp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/bgp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
