file(REMOVE_RECURSE
  "CMakeFiles/micro_upc.dir/micro_upc.cpp.o"
  "CMakeFiles/micro_upc.dir/micro_upc.cpp.o.d"
  "micro_upc"
  "micro_upc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_upc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
