# Empty compiler generated dependencies file for micro_upc.
# This may be replaced when dependencies are built.
