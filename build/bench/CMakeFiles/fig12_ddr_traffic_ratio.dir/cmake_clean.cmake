file(REMOVE_RECURSE
  "CMakeFiles/fig12_ddr_traffic_ratio.dir/fig12_ddr_traffic_ratio.cpp.o"
  "CMakeFiles/fig12_ddr_traffic_ratio.dir/fig12_ddr_traffic_ratio.cpp.o.d"
  "fig12_ddr_traffic_ratio"
  "fig12_ddr_traffic_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ddr_traffic_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
