# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_ddr_traffic_ratio.
