# Empty dependencies file for fig12_ddr_traffic_ratio.
# This may be replaced when dependencies are built.
