file(REMOVE_RECURSE
  "CMakeFiles/fig08_mg_simd.dir/fig08_mg_simd.cpp.o"
  "CMakeFiles/fig08_mg_simd.dir/fig08_mg_simd.cpp.o.d"
  "fig08_mg_simd"
  "fig08_mg_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mg_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
