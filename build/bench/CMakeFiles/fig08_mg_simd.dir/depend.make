# Empty dependencies file for fig08_mg_simd.
# This may be replaced when dependencies are built.
