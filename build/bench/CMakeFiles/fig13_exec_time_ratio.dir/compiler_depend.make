# Empty compiler generated dependencies file for fig13_exec_time_ratio.
# This may be replaced when dependencies are built.
