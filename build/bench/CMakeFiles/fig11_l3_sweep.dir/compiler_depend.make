# Empty compiler generated dependencies file for fig11_l3_sweep.
# This may be replaced when dependencies are built.
