# Empty compiler generated dependencies file for fig03_modes.
# This may be replaced when dependencies are built.
