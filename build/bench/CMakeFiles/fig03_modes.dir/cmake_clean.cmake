file(REMOVE_RECURSE
  "CMakeFiles/fig03_modes.dir/fig03_modes.cpp.o"
  "CMakeFiles/fig03_modes.dir/fig03_modes.cpp.o.d"
  "fig03_modes"
  "fig03_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
