file(REMOVE_RECURSE
  "CMakeFiles/bgpc_mine.dir/bgpc_mine.cpp.o"
  "CMakeFiles/bgpc_mine.dir/bgpc_mine.cpp.o.d"
  "bgpc_mine"
  "bgpc_mine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpc_mine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
