# Empty dependencies file for bgpc_mine.
# This may be replaced when dependencies are built.
