# Empty compiler generated dependencies file for bgpc_run.
# This may be replaced when dependencies are built.
