file(REMOVE_RECURSE
  "CMakeFiles/bgpc_run.dir/bgpc_run.cpp.o"
  "CMakeFiles/bgpc_run.dir/bgpc_run.cpp.o.d"
  "bgpc_run"
  "bgpc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
